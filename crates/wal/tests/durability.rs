//! End-to-end durability on a small fixed catalog: log-then-apply
//! ingest/retract, incremental snapshots, WAL compaction, and recovery
//! — each compared byte-for-byte (via `snapshot_json`) against a plain
//! sequential [`ProductStore`] fed the same operations.

use std::path::{Path, PathBuf};

use pse_core::{
    AttributeCorrespondence, AttributeDef, AttributeKind, Catalog, CategorySchema,
    CorrespondenceSet, MerchantId, Offer, OfferId, Spec, Taxonomy,
};
use pse_store::ProductStore;
use pse_synthesis::runtime::reconcile_batch;
use pse_synthesis::FnProvider;
use pse_wal::{read_wal, recover, Durability, DurabilityConfig, WalRecord};

fn setup() -> (Catalog, CorrespondenceSet, Vec<Offer>) {
    let mut tax = Taxonomy::new();
    let top = tax.add_top_level("Computing");
    let cat = tax.add_leaf(
        top,
        "Hard Drives",
        CategorySchema::from_attributes([
            AttributeDef::key("MPN", AttributeKind::Identifier),
            AttributeDef::key("UPC", AttributeKind::Identifier),
            AttributeDef::new("Speed", AttributeKind::Numeric),
            AttributeDef::new("Capacity", AttributeKind::Numeric),
        ]),
    );
    let catalog = Catalog::new(tax);
    let corr = |ap: &str, ao: &str, m: u32| AttributeCorrespondence {
        catalog_attribute: ap.into(),
        merchant_attribute: ao.into(),
        merchant: MerchantId(m),
        category: cat,
        score: 0.9,
    };
    let set = CorrespondenceSet::from_correspondences([
        corr("MPN", "mpn", 0),
        corr("UPC", "upc", 0),
        corr("Speed", "rpm", 0),
        corr("Capacity", "capacity", 0),
        corr("MPN", "mfr part", 1),
        corr("Speed", "speed", 1),
    ]);
    let mk = |id: u64, merchant: u32, pairs: &[(&str, &str)]| Offer {
        id: OfferId(id),
        merchant: MerchantId(merchant),
        price_cents: 100,
        image_url: None,
        category: Some(cat),
        url: String::new(),
        title: String::new(),
        spec: Spec::from_pairs(pairs.iter().copied()),
    };
    let offers = vec![
        mk(0, 0, &[("MPN", "ABC123"), ("RPM", "7200 rpm"), ("Capacity", "500 GB")]),
        mk(1, 1, &[("Mfr. Part #", "abc-123"), ("Speed", "7200")]),
        mk(2, 1, &[("Mfr. Part #", "XYZ999"), ("Speed", "5400")]),
        mk(3, 0, &[("MPN", "—"), ("UPC", "0001112223334"), ("RPM", "5400 rpm")]),
        mk(4, 0, &[("MPN", "abc123"), ("RPM", "10000 rpm")]),
    ];
    (catalog, set, offers)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pse-wal-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dcfg(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        wal_path: dir.join("wal.log"),
        snapshot_dir: dir.join("segments"),
        compaction_threshold_bytes: 1 << 20,
        group: Default::default(),
    }
}

/// The serving layer's write protocol, single-shard edition: reconcile,
/// log + fsync, then apply.
fn durable_ingest(
    dur: &mut Durability,
    store: &mut ProductStore,
    catalog: &Catalog,
    offers: &[Offer],
) {
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let reconciled = reconcile_batch(offers, store.correspondences(), &provider);
    dur.log(&WalRecord::Ingest(reconciled.clone())).unwrap();
    store.ingest_reconciled(catalog, reconciled);
    dur.mark_dirty([0]);
}

fn durable_retract(
    dur: &mut Durability,
    store: &mut ProductStore,
    catalog: &Catalog,
    ids: &[OfferId],
) {
    dur.log(&WalRecord::Retract(ids.to_vec())).unwrap();
    store.retract(catalog, ids);
    dur.mark_dirty([0]);
}

fn snapshot(dur: &mut Durability, store: &ProductStore) {
    dur.write_snapshot(1, store.config(), store.correspondences(), |_| store.clusters_value())
        .unwrap();
}

/// Sequential oracle: a plain store fed the same raw offers.
fn oracle(catalog: &Catalog, set: &CorrespondenceSet, batches: &[&[Offer]]) -> ProductStore {
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let mut store = ProductStore::new(set.clone());
    for batch in batches {
        store.ingest(catalog, batch, &provider);
    }
    store
}

#[test]
fn log_only_recovery_matches_sequential_replay() {
    let (catalog, set, offers) = setup();
    let dir = tmp("log-only");
    let cfg = dcfg(&dir);
    {
        let (recovered, mut dur, _) =
            Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
        assert!(recovered.is_none(), "fresh directory has nothing to recover");
        assert!(dur.needs_initial_snapshot());
        let mut store = ProductStore::new(set.clone());
        snapshot(&mut dur, &store); // initial (empty) snapshot
        durable_ingest(&mut dur, &mut store, &catalog, &offers[..2]);
        durable_ingest(&mut dur, &mut store, &catalog, &offers[2..]);
        // Crash here: no snapshot since the initial one.
    }
    let (recovered, stats) =
        recover(&cfg, &catalog, || ProductStore::new(set.clone())).unwrap().unwrap();
    assert_eq!(stats.wal_records_replayed, 2);
    let expect = oracle(&catalog, &set, &[&offers[..2], &offers[2..]]);
    assert_eq!(recovered.snapshot_json(), expect.snapshot_json());
    // The JSON oracle agrees with itself through restore_json.
    let via_json = ProductStore::restore_json(&expect.snapshot_json()).unwrap();
    assert_eq!(recovered.snapshot_json(), via_json.snapshot_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_folds_the_log_and_recovery_replays_only_the_tail() {
    let (catalog, set, offers) = setup();
    let dir = tmp("compact");
    let cfg = dcfg(&dir);
    {
        let (_, mut dur, _) =
            Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
        let mut store = ProductStore::new(set.clone());
        snapshot(&mut dur, &store);
        durable_ingest(&mut dur, &mut store, &catalog, &offers[..3]);
        snapshot(&mut dur, &store); // fold: rotates the WAL
        assert_eq!(dur.wal_len(), pse_wal::WAL_HEADER_LEN, "snapshot rotated the log");
        durable_ingest(&mut dur, &mut store, &catalog, &offers[3..]);
        durable_retract(&mut dur, &mut store, &catalog, &[OfferId(2)]);
    }
    let (recovered, stats) =
        recover(&cfg, &catalog, || ProductStore::new(set.clone())).unwrap().unwrap();
    assert_eq!(stats.wal_records_replayed, 2, "only the post-snapshot tail replays");
    let mut expect = oracle(&catalog, &set, &[&offers[..3], &offers[3..]]);
    expect.retract(&catalog, &[OfferId(2)]);
    assert_eq!(recovered.snapshot_json(), expect.snapshot_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_generation_tail_is_never_replayed_twice() {
    let (catalog, set, offers) = setup();
    let dir = tmp("stale-gen");
    let cfg = dcfg(&dir);
    let expect;
    {
        let (_, mut dur, _) =
            Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
        let mut store = ProductStore::new(set.clone());
        snapshot(&mut dur, &store);
        durable_ingest(&mut dur, &mut store, &catalog, &offers[..]);
        // Simulate a crash between manifest commit and WAL rotation: the
        // snapshot folds the ingest record into segments, then we put
        // the pre-rotation log (old generation, same record) back.
        let pre_rotation = std::fs::read(&cfg.wal_path).unwrap();
        snapshot(&mut dur, &store);
        std::fs::write(&cfg.wal_path, &pre_rotation).unwrap();
        expect = store.snapshot_json();
    }
    let (recovered, stats) =
        recover(&cfg, &catalog, || ProductStore::new(set.clone())).unwrap().unwrap();
    assert_eq!(stats.wal_records_replayed, 0, "stale-generation records are already folded");
    assert_eq!(recovered.snapshot_json(), expect, "no double replay");
    // Reopening heals the log: fresh file at the manifest's generation.
    let manifest_gen = {
        let (_, dur, _) =
            Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
        drop(dur);
        read_wal(&cfg.wal_path, 0).unwrap().unwrap()
    };
    assert!(manifest_gen.records.is_empty(), "healed log starts empty");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_recovers_the_durable_prefix_and_reopen_truncates() {
    let (catalog, set, offers) = setup();
    let dir = tmp("torn-tail");
    let cfg = dcfg(&dir);
    {
        let (_, mut dur, _) =
            Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
        let mut store = ProductStore::new(set.clone());
        snapshot(&mut dur, &store);
        durable_ingest(&mut dur, &mut store, &catalog, &offers[..3]);
        durable_ingest(&mut dur, &mut store, &catalog, &offers[3..]);
    }
    // Tear the last record mid-frame.
    let bytes = std::fs::read(&cfg.wal_path).unwrap();
    std::fs::write(&cfg.wal_path, &bytes[..bytes.len() - 7]).unwrap();
    let (recovered, stats) =
        recover(&cfg, &catalog, || ProductStore::new(set.clone())).unwrap().unwrap();
    assert_eq!(stats.wal_records_replayed, 1, "torn second record dropped");
    assert!(stats.torn_bytes > 0);
    let expect = oracle(&catalog, &set, &[&offers[..3]]);
    assert_eq!(recovered.snapshot_json(), expect.snapshot_json());
    // Reopen for serving: the torn bytes are physically gone and the
    // store continues from the durable prefix.
    let (reopened, dur, _) =
        Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
    drop(dur);
    assert_eq!(reopened.unwrap().snapshot_json(), expect.snapshot_json());
    let tail = read_wal(&cfg.wal_path, 0).unwrap().unwrap();
    assert_eq!(tail.torn_bytes, 0, "reopen truncated the torn tail");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_snapshot_rewrites_only_dirty_shards() {
    let (catalog, set, offers) = setup();
    let dir = tmp("incremental");
    let cfg = dcfg(&dir);
    let (_, mut dur, _) =
        Durability::open(cfg.clone(), &catalog, || ProductStore::new(set.clone())).unwrap();
    // Two "shards": split the store's clusters by key length parity.
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let mut store = ProductStore::new(set.clone());
    store.ingest(&catalog, &offers, &provider);
    let shards = store.clone().split_by(2, |key| key.2.len() % 2);
    let full = dur
        .write_snapshot(2, store.config(), store.correspondences(), |i| shards[i].clusters_value())
        .unwrap();
    assert_eq!(full.segments_written, 2, "first snapshot writes everything");
    // Nothing dirty: everything is skipped, nothing hits the disk.
    let noop = dur
        .write_snapshot(2, store.config(), store.correspondences(), |i| shards[i].clusters_value())
        .unwrap();
    assert_eq!((noop.segments_written, noop.segments_skipped), (0, 2));
    assert_eq!(noop.bytes_written, 0);
    // One dirty shard: exactly one segment is rewritten.
    dur.log(&WalRecord::Retract(vec![OfferId(999)])).unwrap(); // no-op op, but logged
    dur.mark_dirty([1]);
    let incr = dur
        .write_snapshot(2, store.config(), store.correspondences(), |i| shards[i].clusters_value())
        .unwrap();
    assert_eq!((incr.segments_written, incr.segments_skipped), (1, 1));
    // Recovery reads the mixed-generation segment set cleanly.
    drop(dur);
    let (recovered, _) =
        recover(&cfg, &catalog, || ProductStore::new(set.clone())).unwrap().unwrap();
    assert_eq!(recovered.snapshot_json(), store.snapshot_json());
    std::fs::remove_dir_all(&dir).unwrap();
}
