//! A persistent, incrementally maintained product store.
//!
//! [`RuntimePipeline::process`](pse_synthesis::RuntimePipeline) is
//! batch-only: every call re-reconciles, re-clusters, and re-fuses the
//! entire offer set. A PSE that continuously receives merchant feeds needs
//! the catalog to be a live structure instead — [`ProductStore`] holds
//! reconciled cluster state keyed by `(category, key_attribute, normalized
//! key_value)` and, on [`ProductStore::ingest`], re-fuses only the clusters
//! a batch actually touched. Steady-state cost is proportional to the
//! batch, not the corpus.
//!
//! # Batch equivalence
//!
//! Ingesting any partition of an offer stream, in any batch sizes, yields
//! **byte-identical** products to one `RuntimePipeline::process` call over
//! the concatenation. The guarantee holds by construction:
//!
//! - per-offer reconciliation and key routing are pure functions of the
//!   offer (shared with the batch path via
//!   [`pse_synthesis::reconcile_batch`] and [`KeyAttributes::route`]),
//!   so batch boundaries cannot change where an offer lands;
//! - cluster members are appended in stream order, which equals the order
//!   `cluster_by_key` would see over the concatenation;
//! - fusion ([`pse_synthesis::fuse_cluster`]) is a deterministic function
//!   of the member sequence, re-run whenever a cluster is dirty;
//! - products are emitted in `BTreeMap` key order — the same
//!   `(category, key_attribute, key_value)` order the batch pipeline sorts
//!   its clusters into.
//!
//! The property is enforced by proptests (`tests/incremental_store.rs` at
//! the workspace root) at 1 and 4 threads, and by the `check.sh`
//! incremental smoke over the Table-2 corpus.

use std::collections::{BTreeMap, BTreeSet};

use pse_core::{Catalog, CategoryId, CorrespondenceSet, Offer, OfferId};
use pse_synthesis::runtime::{
    advance_cluster_fusion, fuse_cluster_cached, reconcile_batch, Cluster, ClusterFusionCache,
    KeyAttributes,
};
use pse_synthesis::{ReconciledOffer, RuntimeConfig, SpecProvider, SynthesizedProduct};
use serde::{Deserialize, Serialize};

/// Snapshot format version; bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a store operation failed. Implements `std::error::Error`; a
/// `From<StoreError> for String` bridge is kept for one release so callers
/// still holding `Result<_, String>` migrate with a `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The snapshot was not valid JSON for the expected layout.
    Json(String),
    /// The snapshot was written by an incompatible store version.
    UnsupportedVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The snapshot parsed but describes an impossible store — e.g. one
    /// offer claimed by two different clusters. Restoring it silently
    /// would let corruption masquerade as a healthy catalog.
    CorruptSnapshot(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(msg) => write!(f, "snapshot parse error: {msg}"),
            Self::UnsupportedVersion { found, expected } => {
                write!(f, "snapshot version {found} unsupported (expected {expected})")
            }
            Self::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for String {
    fn from(e: StoreError) -> String {
        e.to_string()
    }
}

/// Identity of a cluster: `(category, key attribute, normalized key value)`.
/// `BTreeMap` iteration over this key reproduces the batch pipeline's
/// cluster output order exactly.
pub type ClusterKey = (CategoryId, String, String);

/// One cluster's persistent state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ClusterState {
    /// Members in stream (ingestion) order.
    members: Vec<ReconciledOffer>,
    /// Cached fusion result; `None` when the cluster is below
    /// `min_cluster_size` or its category is unknown to the catalog.
    fused: Option<SynthesizedProduct>,
    /// Whether membership changed since the last fusion.
    dirty: bool,
}

/// What one [`ProductStore::ingest`] (or [`ProductStore::retract`]) did —
/// the numbers the incremental experiment reports per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Offers in the batch.
    pub offers_in: usize,
    /// Offers that reconciled and routed to a cluster.
    pub offers_routed: usize,
    /// Clusters whose membership changed.
    pub clusters_dirty: usize,
    /// Dirty clusters actually re-fused (≥ `min_cluster_size`).
    pub refused: usize,
}

/// One ingest/retract's outcome with the precise set of clusters it
/// touched — what an MVCC front (`pse-serve`) needs to rebuild only the
/// affected entries of an immutable read snapshot.
#[derive(Debug, Clone, Default)]
pub struct IngestDelta {
    /// The batch-level numbers ([`IngestStats`] semantics unchanged).
    pub stats: IngestStats,
    /// Every cluster whose visible product may have changed, in key
    /// order: clusters that gained or lost members, including clusters
    /// that vanished entirely (retraction of the last member). This is a
    /// superset of `stats.clusters_dirty`, which counts only clusters
    /// that still exist.
    pub dirty: Vec<ClusterKey>,
}

/// The serialized form of a store (see [`ProductStore::snapshot_json`]).
#[derive(Serialize, Deserialize)]
struct Snapshot {
    schema_version: u32,
    config: RuntimeConfig,
    correspondences: CorrespondenceSet,
    clusters: BTreeMap<ClusterKey, ClusterState>,
}

/// A persistent product catalog maintained incrementally from offer
/// batches. See the crate docs for the batch-equivalence guarantee.
#[derive(Debug, Clone)]
pub struct ProductStore {
    correspondences: CorrespondenceSet,
    config: RuntimeConfig,
    /// Routing table derived from `config.key_attributes` (not persisted).
    keys: KeyAttributes,
    clusters: BTreeMap<ClusterKey, ClusterState>,
    /// Reverse index for `retract`: which cluster holds each offer.
    offer_index: BTreeMap<OfferId, ClusterKey>,
    /// Per-cluster incremental fusion state. Purely an accelerator: never
    /// serialized (snapshots stay byte-identical and restored stores
    /// rebuild entries lazily on first re-fusion), dropped for a cluster
    /// whenever its member list mutates non-monotonically (retraction).
    fusion: BTreeMap<ClusterKey, ClusterFusionCache>,
}

impl ProductStore {
    /// Empty store with the default pipeline configuration.
    pub fn new(correspondences: CorrespondenceSet) -> Self {
        Self::with_config(correspondences, RuntimeConfig::default())
    }

    /// Empty store with a custom pipeline configuration.
    pub fn with_config(correspondences: CorrespondenceSet, config: RuntimeConfig) -> Self {
        let keys = KeyAttributes::new(&config.key_attributes);
        Self {
            correspondences,
            config,
            keys,
            clusters: BTreeMap::new(),
            offer_index: BTreeMap::new(),
            fusion: BTreeMap::new(),
        }
    }

    /// The correspondence set in use.
    pub fn correspondences(&self) -> &CorrespondenceSet {
        &self.correspondences
    }

    /// The pipeline configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of clusters currently held (including below-minimum ones).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of offers currently held across all clusters.
    pub fn offer_count(&self) -> usize {
        self.clusters.values().map(|s| s.members.len()).sum()
    }

    /// Register every gated `store.*` counter at zero. Called from each
    /// span-emitting entry point so any run that shows a `store.*` span
    /// also reports the full counter set (`obs_check` enforces this),
    /// even when the run never snapshots or refuses an offer.
    fn seed_obs_counters() {
        for c in [
            "store.ingest",
            "store.clusters_dirty",
            "store.refused",
            "store.retracted",
            "store.snapshot",
        ] {
            pse_obs::seed(c);
        }
    }

    /// Ingest a batch: reconcile (in parallel, order-preserving), route
    /// each offer to its cluster, and re-fuse only the clusters this batch
    /// touched. Offers without a category, with no mapped pairs, or with no
    /// usable key are dropped exactly as the batch pipeline drops them.
    pub fn ingest<P: SpecProvider>(
        &mut self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> IngestStats {
        let _span = pse_obs::span("store.ingest");
        pse_obs::add("store.ingest", offers.len() as u64);
        let reconciled = reconcile_batch(offers, &self.correspondences, provider);
        let mut stats = self.ingest_reconciled(catalog, reconciled);
        stats.offers_in = offers.len();
        stats
    }

    /// Ingest offers that are already reconciled (the second half of
    /// [`ProductStore::ingest`]): route each to its cluster and re-fuse
    /// only the touched clusters. This is the entry point sharded fronts
    /// use — they reconcile a batch once, partition the reconciled offers
    /// by cluster key, and feed each shard its slice, which yields the
    /// same cluster contents as ingesting the whole batch into one store.
    ///
    /// `offers_in` in the returned stats equals the reconciled count; the
    /// offer-level wrapper overwrites it with the raw batch size.
    pub fn ingest_reconciled(
        &mut self,
        catalog: &Catalog,
        reconciled: Vec<ReconciledOffer>,
    ) -> IngestStats {
        self.ingest_reconciled_delta(catalog, reconciled).stats
    }

    /// [`ProductStore::ingest_reconciled`] with the exact dirty-cluster
    /// set attached — the invalidation signal the serving layer's
    /// snapshot/response cache consumes.
    pub fn ingest_reconciled_delta(
        &mut self,
        catalog: &Catalog,
        reconciled: Vec<ReconciledOffer>,
    ) -> IngestDelta {
        Self::seed_obs_counters();
        let offers_in = reconciled.len();
        let mut dirty: BTreeSet<ClusterKey> = BTreeSet::new();
        let mut offers_routed = 0;
        let mut clusters_formed = 0u64;
        for r in reconciled {
            let Some((attr, value)) = self.keys.route(&r) else { continue };
            let key = (r.category, attr, value);
            self.offer_index.insert(r.offer, key.clone());
            let state = match self.clusters.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    clusters_formed += 1;
                    slot.insert(ClusterState::default())
                }
                std::collections::btree_map::Entry::Occupied(slot) => slot.into_mut(),
            };
            state.members.push(r);
            state.dirty = true;
            dirty.insert(key);
            offers_routed += 1;
        }
        pse_obs::add("runtime.clusters_formed", clusters_formed);
        pse_obs::add("store.clusters_dirty", dirty.len() as u64);
        let refused = self.refuse(catalog, &dirty);
        let stats = IngestStats { offers_in, offers_routed, clusters_dirty: dirty.len(), refused };
        IngestDelta { stats, dirty: dirty.into_iter().collect() }
    }

    /// Remove offers by id, re-fusing the affected clusters. Unknown ids
    /// are ignored. A cluster whose last member is retracted disappears.
    pub fn retract(&mut self, catalog: &Catalog, ids: &[OfferId]) -> IngestStats {
        self.retract_delta(catalog, ids).stats
    }

    /// [`ProductStore::retract`] with the exact dirty-cluster set
    /// attached. Unlike `stats.clusters_dirty`, the delta also lists
    /// clusters that vanished (last member retracted), because their
    /// disappearance invalidates cached reads just as surely.
    pub fn retract_delta(&mut self, catalog: &Catalog, ids: &[OfferId]) -> IngestDelta {
        let _span = pse_obs::span("store.retract");
        Self::seed_obs_counters();
        let mut dirty: BTreeSet<ClusterKey> = BTreeSet::new();
        let mut vanished: BTreeSet<ClusterKey> = BTreeSet::new();
        let mut removed = 0;
        for id in ids {
            let Some(key) = self.offer_index.remove(id) else { continue };
            let Some(state) = self.clusters.get_mut(&key) else { continue };
            state.members.retain(|m| m.offer != *id);
            removed += 1;
            // Retraction is a non-append mutation: the incremental fusion
            // state no longer describes the member list. Drop it; the next
            // re-fusion rebuilds from the retained members.
            self.fusion.remove(&key);
            if state.members.is_empty() {
                self.clusters.remove(&key);
                vanished.insert(key);
            } else {
                state.dirty = true;
                dirty.insert(key);
            }
        }
        pse_obs::add("store.retracted", removed as u64);
        pse_obs::add("store.clusters_dirty", dirty.len() as u64);
        let refused = self.refuse(catalog, &dirty);
        let stats = IngestStats {
            offers_in: ids.len(),
            offers_routed: removed,
            clusters_dirty: dirty.len(),
            refused,
        };
        dirty.append(&mut vanished);
        IngestDelta { stats, dirty: dirty.into_iter().collect() }
    }

    /// Whether any of `ids` is currently held by this store — the cheap
    /// read-side probe a sharded front uses to skip shards a retraction
    /// cannot touch.
    pub fn owns_any(&self, ids: &[OfferId]) -> bool {
        ids.iter().any(|id| self.offer_index.contains_key(id))
    }

    /// Re-fuse the given dirty clusters (in parallel, order-preserving);
    /// clusters below `min_cluster_size` just drop their cached product.
    fn refuse(&mut self, catalog: &Catalog, dirty: &BTreeSet<ClusterKey>) -> usize {
        let mut work: Vec<(ClusterKey, Cluster, ClusterFusionCache)> = Vec::new();
        for key in dirty {
            let Some(state) = self.clusters.get_mut(key) else { continue };
            if state.members.len() < self.config.min_cluster_size {
                state.fused = None;
                state.dirty = false;
                continue;
            }
            // Fold the members appended since the last re-fusion into the
            // cluster's incremental fusion state (building it from scratch
            // after a restore or a retraction), then move both members and
            // cache out so fusion borrows no `&mut self` state; they are
            // put back below.
            let cache = self.fusion.entry(key.clone()).or_default();
            advance_cluster_fusion(catalog, key.0, &state.members, &self.config, cache);
            let cache = std::mem::take(cache);
            let members = std::mem::take(&mut state.members);
            let cluster = Cluster {
                category: key.0,
                key_attribute: key.1.clone(),
                key_value: key.2.clone(),
                members,
            };
            work.push((key.clone(), cluster, cache));
        }
        let refuse_span = pse_obs::span("store.refuse");
        let fused: Vec<Option<SynthesizedProduct>> =
            pse_par::par_map_chunked(&work, 4, |(_, cluster, cache)| {
                fuse_cluster_cached(cluster, &self.config, cache)
            });
        drop(refuse_span);
        let refused = work.len();
        pse_obs::add("store.refused", refused as u64);
        pse_obs::add(
            "runtime.values_fused",
            fused.iter().flatten().map(|p| p.spec.len() as u64).sum::<u64>(),
        );
        for ((key, cluster, cache), product) in work.into_iter().zip(fused) {
            let state = self.clusters.get_mut(&key).expect("cluster vanished during refuse");
            state.members = cluster.members;
            state.fused = product;
            state.dirty = false;
            self.fusion.insert(key, cache);
        }
        refused
    }

    /// Current products, in the exact order `RuntimePipeline::process`
    /// would emit them for the concatenated stream.
    pub fn products(&self) -> Vec<SynthesizedProduct> {
        self.products_keyed().map(|(_, p)| p.clone()).collect()
    }

    /// Current products with their cluster keys, in key order. The
    /// borrowing primitive behind [`ProductStore::products`] and the
    /// per-category / per-key lookups.
    pub fn products_keyed(&self) -> impl Iterator<Item = (&ClusterKey, &SynthesizedProduct)> {
        self.clusters
            .iter()
            .filter(|(_, s)| s.members.len() >= self.config.min_cluster_size)
            .filter_map(|(k, s)| s.fused.as_ref().map(|p| (k, p)))
    }

    /// The product synthesized for one cluster key, if any.
    pub fn product_for(&self, key: &ClusterKey) -> Option<&SynthesizedProduct> {
        let state = self.clusters.get(key)?;
        if state.members.len() < self.config.min_cluster_size {
            return None;
        }
        state.fused.as_ref()
    }

    /// Products of one category, in cluster-key order.
    pub fn products_in_category(&self, category: CategoryId) -> Vec<SynthesizedProduct> {
        self.products_keyed().filter(|(k, _)| k.0 == category).map(|(_, p)| p.clone()).collect()
    }

    /// Split this store into `n` disjoint stores, sending each cluster to
    /// the store `route(key)` picks (values are taken modulo `n`). Every
    /// piece keeps the full configuration and correspondence set; cluster
    /// state moves without re-fusion. Inverse of [`ProductStore::absorb`].
    pub fn split_by(self, n: usize, route: impl Fn(&ClusterKey) -> usize) -> Vec<ProductStore> {
        assert!(n > 0, "cannot split into zero stores");
        let mut pieces: Vec<ProductStore> = (0..n)
            .map(|_| ProductStore::with_config(self.correspondences.clone(), self.config.clone()))
            .collect();
        let mut caches = self.fusion;
        for (key, state) in self.clusters {
            let piece = &mut pieces[route(&key) % n];
            for m in &state.members {
                piece.offer_index.insert(m.offer, key.clone());
            }
            // Fusion state travels with its cluster: it describes the
            // member list, which moves untouched.
            if let Some(cache) = caches.remove(&key) {
                piece.fusion.insert(key.clone(), cache);
            }
            piece.clusters.insert(key, state);
        }
        pieces
    }

    /// Move every cluster of `other` into this store. Intended for merging
    /// disjoint shards back into one store (snapshot export); a cluster key
    /// present in both stores panics, because merging overlapping member
    /// lists cannot preserve stream order.
    pub fn absorb(&mut self, other: ProductStore) {
        self.fusion.extend(other.fusion);
        for (key, state) in other.clusters {
            for m in &state.members {
                self.offer_index.insert(m.offer, key.clone());
            }
            let previous = self.clusters.insert(key, state);
            assert!(previous.is_none(), "absorb: overlapping cluster key");
        }
    }

    /// Serialize the store to JSON. Restoring the snapshot and snapshotting
    /// again yields byte-identical JSON (all collection orders are
    /// deterministic).
    pub fn snapshot_json(&self) -> String {
        let _span = pse_obs::span("store.snapshot");
        Self::seed_obs_counters();
        pse_obs::incr("store.snapshot");
        let snapshot = Snapshot {
            schema_version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            correspondences: self.correspondences.clone(),
            clusters: self.clusters.clone(),
        };
        serde_json::to_string_pretty(&snapshot).expect("snapshot serialization is infallible")
    }

    /// Rebuild a store from a [`ProductStore::snapshot_json`] string.
    /// A snapshot that parses but lists one offer in two different
    /// clusters is rejected as [`StoreError::CorruptSnapshot`] — an
    /// impossible state for a store maintained through `ingest`/`retract`.
    pub fn restore_json(json: &str) -> Result<Self, StoreError> {
        let _span = pse_obs::span("store.restore");
        Self::seed_obs_counters();
        let snapshot: Snapshot = serde_json::from_str(json).map_err(|e| StoreError::Json(e.0))?;
        if snapshot.schema_version != SNAPSHOT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: snapshot.schema_version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let keys = KeyAttributes::new(&snapshot.config.key_attributes);
        let offer_index = Self::index_clusters(&snapshot.clusters)?;
        Ok(Self {
            correspondences: snapshot.correspondences,
            config: snapshot.config,
            keys,
            clusters: snapshot.clusters,
            offer_index,
            fusion: BTreeMap::new(),
        })
    }

    /// Build the offer → cluster reverse index, rejecting any offer that
    /// appears in two *different* clusters (the same offer listed twice
    /// in one cluster is a legitimate re-ingest, not corruption).
    fn index_clusters(
        clusters: &BTreeMap<ClusterKey, ClusterState>,
    ) -> Result<BTreeMap<OfferId, ClusterKey>, StoreError> {
        let mut index = BTreeMap::new();
        for (key, state) in clusters {
            for m in &state.members {
                if let Some(previous) = index.insert(m.offer, key.clone()) {
                    if previous != *key {
                        return Err(StoreError::CorruptSnapshot(format!(
                            "offer {} is claimed by two clusters: {previous:?} and {key:?}",
                            m.offer.0
                        )));
                    }
                }
            }
        }
        Ok(index)
    }

    /// Re-run the [`StoreError::CorruptSnapshot`] screen over the
    /// current cluster state — applied after a WAL replay lands on a
    /// restored store, where segment corruption could otherwise hide.
    pub fn validate_offer_index(&self) -> Result<(), StoreError> {
        Self::index_clusters(&self.clusters).map(|_| ())
    }

    /// Export the cluster map as a serde `Value` tree — what a segmented
    /// binary snapshot persists per shard. The inverse is
    /// [`ProductStore::from_cluster_parts`].
    pub fn clusters_value(&self) -> serde::Value {
        self.clusters.to_value()
    }

    /// Rebuild a store from disjoint cluster-map parts (one per shard,
    /// each a [`ProductStore::clusters_value`] tree) plus the config and
    /// correspondences a snapshot's meta blob carries. Rejects a cluster
    /// key present in two parts, and the same offer-in-two-clusters
    /// corruption `restore_json` screens for.
    pub fn from_cluster_parts(
        config: RuntimeConfig,
        correspondences: CorrespondenceSet,
        parts: impl IntoIterator<Item = serde::Value>,
    ) -> Result<Self, StoreError> {
        let mut clusters: BTreeMap<ClusterKey, ClusterState> = BTreeMap::new();
        for part in parts {
            let map: BTreeMap<ClusterKey, ClusterState> =
                serde::Deserialize::from_value(&part).map_err(|e| StoreError::Json(e.0))?;
            for (key, state) in map {
                if clusters.insert(key.clone(), state).is_some() {
                    return Err(StoreError::CorruptSnapshot(format!(
                        "cluster {key:?} appears in two segments"
                    )));
                }
            }
        }
        let keys = KeyAttributes::new(&config.key_attributes);
        let offer_index = Self::index_clusters(&clusters)?;
        Ok(Self { correspondences, config, keys, clusters, offer_index, fusion: BTreeMap::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{
        AttributeCorrespondence, AttributeDef, AttributeKind, CategorySchema, MerchantId, Spec,
        Taxonomy,
    };
    use pse_synthesis::{FnProvider, Pipeline};

    fn setup() -> (Catalog, CorrespondenceSet, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::key("MPN", AttributeKind::Identifier),
                AttributeDef::key("UPC", AttributeKind::Identifier),
                AttributeDef::new("Speed", AttributeKind::Numeric),
                AttributeDef::new("Capacity", AttributeKind::Numeric),
            ]),
        );
        let catalog = Catalog::new(tax);
        let corr = |ap: &str, ao: &str, m: u32| AttributeCorrespondence {
            catalog_attribute: ap.into(),
            merchant_attribute: ao.into(),
            merchant: MerchantId(m),
            category: cat,
            score: 0.9,
        };
        let set = CorrespondenceSet::from_correspondences([
            corr("MPN", "mpn", 0),
            corr("UPC", "upc", 0),
            corr("Speed", "rpm", 0),
            corr("Capacity", "capacity", 0),
            corr("MPN", "mfr part", 1),
            corr("UPC", "upc", 1),
            corr("Speed", "speed", 1),
            corr("Capacity", "hard disk size", 1),
        ]);
        let offers = vec![
            mk(0, 0, cat, &[("MPN", "ABC123"), ("RPM", "7200 rpm"), ("Capacity", "500 GB")]),
            mk(
                1,
                1,
                cat,
                &[("Mfr. Part #", "abc-123"), ("Speed", "7200"), ("Hard Disk Size", "500")],
            ),
            mk(2, 1, cat, &[("Mfr. Part #", "XYZ999"), ("Speed", "5400")]),
            mk(3, 0, cat, &[("John D.", "nice drive")]), // noise only
            mk(4, 0, cat, &[("MPN", "—"), ("UPC", "0001112223334"), ("RPM", "5400 rpm")]),
        ];
        (catalog, set, offers)
    }

    fn mk(id: u64, merchant: u32, cat: CategoryId, pairs: &[(&str, &str)]) -> Offer {
        Offer {
            id: OfferId(id),
            merchant: MerchantId(merchant),
            price_cents: 100,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        }
    }

    fn provider() -> FnProvider<impl Fn(&Offer) -> Spec + Sync> {
        FnProvider(|o: &Offer| o.spec.clone())
    }

    fn products_json(products: &[SynthesizedProduct]) -> String {
        serde_json::to_string_pretty(&products.to_vec()).unwrap()
    }

    #[test]
    fn single_batch_matches_process() {
        let (catalog, set, offers) = setup();
        let one_shot = Pipeline::builder()
            .catalog(catalog.clone())
            .correspondences(set.clone())
            .build()
            .unwrap()
            .process(&offers, &provider());
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        assert_eq!(products_json(&store.products()), products_json(&one_shot.products));
    }

    #[test]
    fn split_batches_match_process() {
        let (catalog, set, offers) = setup();
        let one_shot = Pipeline::builder()
            .catalog(catalog.clone())
            .correspondences(set.clone())
            .build()
            .unwrap()
            .process(&offers, &provider());
        for split in 0..=offers.len() {
            let mut store = ProductStore::new(set.clone());
            store.ingest(&catalog, &offers[..split], &provider());
            store.ingest(&catalog, &offers[split..], &provider());
            assert_eq!(
                products_json(&store.products()),
                products_json(&one_shot.products),
                "split at {split}"
            );
        }
    }

    #[test]
    fn second_batch_refuses_only_touched_clusters() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        let first = store.ingest(&catalog, &offers, &provider());
        assert_eq!(first.clusters_dirty, 3, "abc123, xyz999, and the UPC fallthrough");
        // A new offer for the existing abc123 cluster touches exactly one.
        let more =
            vec![mk(10, 0, offers[0].category.unwrap(), &[("MPN", "abc123"), ("RPM", "7200 rpm")])];
        let second = store.ingest(&catalog, &more, &provider());
        assert_eq!(second.clusters_dirty, 1);
        assert_eq!(second.refused, 1);
        assert_eq!(store.cluster_count(), 3);
    }

    #[test]
    fn empty_key_offer_falls_through_to_upc_cluster() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let products = store.products();
        let upc = products.iter().find(|p| p.key_attribute == "UPC").expect("UPC cluster");
        assert_eq!(upc.offers, vec![OfferId(4)]);
    }

    #[test]
    fn retract_restores_previous_products() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set.clone());
        store.ingest(&catalog, &offers, &provider());
        let before = products_json(&store.products());
        let extra = vec![mk(
            10,
            0,
            offers[0].category.unwrap(),
            &[("MPN", "abc123"), ("RPM", "10000 rpm")],
        )];
        store.ingest(&catalog, &extra, &provider());
        assert_ne!(products_json(&store.products()), before, "extra offer visible");
        let stats = store.retract(&catalog, &[OfferId(10)]);
        assert_eq!(stats.offers_routed, 1);
        assert_eq!(products_json(&store.products()), before, "retraction undoes the ingest");
    }

    #[test]
    fn retract_last_member_removes_cluster() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let n = store.cluster_count();
        store.retract(&catalog, &[OfferId(2)]); // xyz999 singleton
        assert_eq!(store.cluster_count(), n - 1);
        assert!(store.products().iter().all(|p| p.key_value != "xyz999"));
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let snap = store.snapshot_json();
        let restored = ProductStore::restore_json(&snap).unwrap();
        assert_eq!(restored.snapshot_json(), snap);
        assert_eq!(products_json(&restored.products()), products_json(&store.products()));
    }

    #[test]
    fn snapshot_restore_then_ingest_matches_uninterrupted() {
        let (catalog, set, offers) = setup();
        let mut uninterrupted = ProductStore::new(set.clone());
        uninterrupted.ingest(&catalog, &offers[..2], &provider());
        uninterrupted.ingest(&catalog, &offers[2..], &provider());

        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers[..2], &provider());
        let mut restored = ProductStore::restore_json(&store.snapshot_json()).unwrap();
        restored.ingest(&catalog, &offers[2..], &provider());
        assert_eq!(products_json(&restored.products()), products_json(&uninterrupted.products()));
    }

    #[test]
    fn bad_snapshot_version_rejected() {
        let (_, set, _) = setup();
        let store = ProductStore::new(set);
        let snap = store.snapshot_json().replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert_eq!(
            ProductStore::restore_json(&snap).err(),
            Some(StoreError::UnsupportedVersion { found: 99, expected: SNAPSHOT_VERSION })
        );
    }

    #[test]
    fn garbage_snapshot_is_a_json_error() {
        let err = ProductStore::restore_json("not json").unwrap_err();
        assert!(matches!(err, StoreError::Json(_)));
        let as_string: String = err.into();
        assert!(as_string.contains("snapshot parse error"));
    }

    #[test]
    fn duplicate_offer_across_clusters_is_corrupt() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let mut snap: Snapshot = serde_json::from_str(&store.snapshot_json()).unwrap();
        let keys: Vec<ClusterKey> = snap.clusters.keys().cloned().collect();
        assert!(keys.len() >= 2);
        // Corruption: the first cluster's first member also claimed by
        // the second cluster.
        let stray = snap.clusters[&keys[0]].members[0].clone();
        snap.clusters.get_mut(&keys[1]).unwrap().members.push(stray);
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let err = ProductStore::restore_json(&json).unwrap_err();
        assert!(matches!(err, StoreError::CorruptSnapshot(_)), "got {err:?}");
        assert!(err.to_string().contains("claimed by two clusters"));
    }

    #[test]
    fn duplicate_offer_within_one_cluster_is_a_legitimate_reingest() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let mut snap: Snapshot = serde_json::from_str(&store.snapshot_json()).unwrap();
        let key = snap.clusters.keys().next().unwrap().clone();
        let dup = snap.clusters[&key].members[0].clone();
        snap.clusters.get_mut(&key).unwrap().members.push(dup);
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(
            ProductStore::restore_json(&json).is_ok(),
            "same-cluster duplicate is not corruption"
        );
    }

    #[test]
    fn cluster_parts_roundtrip_matches_the_json_oracle() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set.clone());
        store.ingest(&catalog, &offers, &provider());
        let rebuilt = ProductStore::from_cluster_parts(
            store.config().clone(),
            set.clone(),
            [store.clusters_value()],
        )
        .unwrap();
        assert_eq!(rebuilt.snapshot_json(), store.snapshot_json());
        rebuilt.validate_offer_index().unwrap();
        // Split parts (as per-shard segments would be) rebuild identically.
        let pieces = store.clone().split_by(3, |key| key.2.len());
        let parts: Vec<serde::Value> = pieces.iter().map(|p| p.clusters_value()).collect();
        let merged = ProductStore::from_cluster_parts(store.config().clone(), set, parts).unwrap();
        assert_eq!(merged.snapshot_json(), store.snapshot_json());
    }

    #[test]
    fn overlapping_cluster_parts_are_corrupt() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set.clone());
        store.ingest(&catalog, &offers, &provider());
        let part = store.clusters_value();
        let err =
            ProductStore::from_cluster_parts(store.config().clone(), set, [part.clone(), part])
                .unwrap_err();
        assert!(matches!(err, StoreError::CorruptSnapshot(_)), "got {err:?}");
        assert!(err.to_string().contains("two segments"));
    }

    #[test]
    fn split_then_absorb_is_identity() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set.clone());
        store.ingest(&catalog, &offers, &provider());
        let snap = store.snapshot_json();
        for n in [1usize, 2, 3, 8] {
            let pieces = store.clone().split_by(n, |key| key.2.len());
            assert_eq!(pieces.len(), n);
            let total: usize = pieces.iter().map(|p| p.offer_count()).sum();
            assert_eq!(total, store.offer_count());
            let mut merged = ProductStore::with_config(set.clone(), store.config().clone());
            for piece in pieces {
                merged.absorb(piece);
            }
            assert_eq!(merged.snapshot_json(), snap, "split into {n} and merged back");
        }
    }

    #[test]
    fn keyed_lookups_agree_with_products() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        let products = store.products();
        assert!(!products.is_empty());
        let keys: Vec<ClusterKey> = store.products_keyed().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), products.len());
        for (key, product) in keys.iter().zip(&products) {
            assert_eq!(
                serde_json::to_string(store.product_for(key).unwrap()).unwrap(),
                serde_json::to_string(product).unwrap()
            );
        }
        let cat = offers[0].category.unwrap();
        assert_eq!(store.products_in_category(cat).len(), products.len());
        assert!(store.products_in_category(CategoryId(4242)).is_empty());
        assert!(store.product_for(&(CategoryId(4242), "MPN".into(), "zzz".into())).is_none());
    }

    #[test]
    fn ingest_delta_lists_exactly_the_touched_clusters() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set.clone());
        let reconciled = reconcile_batch(&offers, &set, &provider());
        let delta = store.ingest_reconciled_delta(&catalog, reconciled);
        assert_eq!(delta.stats.clusters_dirty, 3);
        assert_eq!(delta.dirty.len(), 3, "one key per touched cluster");
        let keys: Vec<ClusterKey> = store.products_keyed().map(|(k, _)| k.clone()).collect();
        assert_eq!(delta.dirty, keys, "dirty keys come back in cluster-key order");
        // A second batch touching one existing cluster reports only it.
        let more =
            vec![mk(10, 0, offers[0].category.unwrap(), &[("MPN", "abc123"), ("RPM", "7200 rpm")])];
        let reconciled = reconcile_batch(&more, &set, &provider());
        let delta = store.ingest_reconciled_delta(&catalog, reconciled);
        assert_eq!(delta.dirty.len(), 1);
        assert_eq!(delta.dirty[0].2, "abc123");
    }

    #[test]
    fn retract_delta_includes_vanished_clusters() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        // OfferId(2) is the xyz999 singleton: retracting it removes the
        // cluster, which must still show up in the delta (the cached
        // response for its category is stale) even though the stats count
        // only clusters that survive.
        let delta = store.retract_delta(&catalog, &[OfferId(2)]);
        assert_eq!(delta.stats.clusters_dirty, 0);
        assert_eq!(delta.dirty.len(), 1);
        assert_eq!(delta.dirty[0].2, "xyz999");
        assert!(store.product_for(&delta.dirty[0]).is_none());
    }

    #[test]
    fn owns_any_probes_the_offer_index() {
        let (catalog, set, offers) = setup();
        let mut store = ProductStore::new(set);
        store.ingest(&catalog, &offers, &provider());
        assert!(store.owns_any(&[OfferId(999), OfferId(0)]));
        assert!(!store.owns_any(&[OfferId(999), OfferId(3)]), "noise-only offer never routed");
        assert!(!store.owns_any(&[]));
        store.retract(&catalog, &[OfferId(0)]);
        assert!(!store.owns_any(&[OfferId(0)]));
    }

    #[test]
    fn min_cluster_size_applies_at_read_time() {
        let (catalog, set, offers) = setup();
        let config = RuntimeConfig { min_cluster_size: 2, ..RuntimeConfig::default() };
        let one_shot = Pipeline::builder()
            .catalog(catalog.clone())
            .correspondences(set.clone())
            .runtime_config(config.clone())
            .build()
            .unwrap()
            .process(&offers, &provider());
        let mut store = ProductStore::with_config(set, config);
        // One offer at a time: the abc123 cluster only crosses the
        // threshold on the second batch.
        for o in &offers {
            store.ingest(&catalog, std::slice::from_ref(o), &provider());
        }
        assert_eq!(products_json(&store.products()), products_json(&one_shot.products));
        assert_eq!(store.products().len(), 1);
    }
}
