//! The LSD-style instance-based Naive Bayes matcher, per Appendix C.
//!
//! For each category, a multi-class Naive Bayes classifier is trained on
//! the *entire catalog content*: classes are the catalog attributes, and
//! the features are the terms of their values. At match time, every value
//! `v` of a merchant attribute `B` is classified; the candidate score is
//! `score(⟨A, B, M, C⟩) = (Σ_{v ∈ V} P(A | v)) / |V|`, and a correspondence
//! is proposed when `B` is the best-scoring merchant attribute for `A`.

use std::collections::HashMap;

use pse_core::{Catalog, CategoryId, MerchantId, Offer};
use pse_ml::MultinomialNaiveBayes;
use pse_synthesis::{ScoredCandidate, SpecProvider};
use pse_text::normalize::normalize_attribute_name;
use pse_text::tokenize::tokens;

/// The Naive Bayes instance matcher.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayesMatcher;

impl NaiveBayesMatcher {
    /// A matcher.
    pub fn new() -> Self {
        Self
    }

    /// Score candidates. Note: unlike our approach and DUMAS, no historical
    /// matches are used — the classifier is trained on catalog content and
    /// executed over all offers (per Appendix C).
    pub fn score_candidates<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        // Collect offer values per (merchant, category, merchant attr).
        let mut values: HashMap<(MerchantId, CategoryId), HashMap<String, Vec<String>>> =
            HashMap::new();
        for offer in offers {
            let Some(category) = offer.category else { continue };
            let spec = provider.spec(offer);
            let slot = values.entry((offer.merchant, category)).or_default();
            for p in spec.iter() {
                let n = normalize_attribute_name(&p.name);
                if !n.is_empty() {
                    slot.entry(n).or_default().push(p.value.clone());
                }
            }
        }

        // Per-category classifiers over catalog content.
        let mut classifiers: HashMap<CategoryId, (Vec<String>, MultinomialNaiveBayes)> =
            HashMap::new();
        let mut out = Vec::new();
        let mut keys: Vec<_> = values.keys().copied().collect();
        keys.sort();

        for (merchant, category) in keys {
            let (attr_names, nb) = classifiers
                .entry(category)
                .or_insert_with(|| train_category_classifier(catalog, category));
            if attr_names.is_empty() {
                continue;
            }
            let merchant_attrs = &values[&(merchant, category)];
            let mut sorted_attrs: Vec<&String> = merchant_attrs.keys().collect();
            sorted_attrs.sort();

            // score[A][B] = mean posterior P(A | v) over values v of B.
            let mut scores: Vec<Vec<f64>> = vec![vec![0.0; sorted_attrs.len()]; attr_names.len()];
            for (j, ao) in sorted_attrs.iter().enumerate() {
                let vals = &merchant_attrs[*ao];
                for v in vals {
                    let toks = tokens(v);
                    let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
                    let posterior = nb.posterior(&refs);
                    for (i, p) in posterior.iter().enumerate() {
                        scores[i][j] += p;
                    }
                }
                for row in scores.iter_mut() {
                    row[j] /= vals.len().max(1) as f64;
                }
            }

            // "A correspondence ⟨A, B⟩ is created if score(A, B) >
            // score(A, B′) for every other B′": per catalog attribute, keep
            // the argmax merchant attribute.
            for (i, ap) in attr_names.iter().enumerate() {
                let Some((j, &s)) = scores[i].iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))
                else {
                    continue;
                };
                if s <= 0.0 {
                    continue;
                }
                let ao = sorted_attrs[j];
                out.push(ScoredCandidate {
                    catalog_attribute: ap.clone(),
                    merchant_attribute: ao.clone(),
                    merchant,
                    category,
                    score: s,
                    is_name_identity: normalize_attribute_name(ap) == **ao,
                });
            }
        }
        out
    }
}

/// Train the per-category classifier: classes = catalog attributes,
/// documents = product attribute values.
fn train_category_classifier(
    catalog: &Catalog,
    category: CategoryId,
) -> (Vec<String>, MultinomialNaiveBayes) {
    let schema = catalog.taxonomy().schema(category);
    let attr_names: Vec<String> = schema.attribute_names().map(String::from).collect();
    let mut nb = MultinomialNaiveBayes::new(attr_names.len());
    for product in catalog.products_in(category) {
        for (i, ap) in attr_names.iter().enumerate() {
            if let Some(v) = product.spec.get(ap) {
                nb.observe(i, tokens(v));
            }
        }
    }
    (attr_names, nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, OfferId, Spec, Taxonomy};
    use pse_synthesis::FnProvider;

    fn scenario() -> (Catalog, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Brand", AttributeKind::Text),
                AttributeDef::new("Interface", AttributeKind::Text),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        for (brand, iface) in
            [("Seagate", "SATA"), ("Hitachi", "IDE"), ("Samsung", "SCSI"), ("Seagate", "SATA")]
        {
            catalog.add_product(
                cat,
                brand,
                Spec::from_pairs([("Brand", brand), ("Interface", iface)]),
            );
        }
        let offers = vec![
            Offer {
                id: OfferId(0),
                merchant: MerchantId(0),
                price_cents: 1,
                image_url: None,
                category: Some(cat),
                url: String::new(),
                title: String::new(),
                spec: Spec::from_pairs([("Make", "Seagate"), ("Connection", "SATA")]),
            },
            Offer {
                id: OfferId(1),
                merchant: MerchantId(0),
                price_cents: 1,
                image_url: None,
                category: Some(cat),
                url: String::new(),
                title: String::new(),
                spec: Spec::from_pairs([("Make", "Hitachi"), ("Connection", "IDE")]),
            },
        ];
        (catalog, offers)
    }

    #[test]
    fn classifies_merchant_attributes_by_value_evidence() {
        let (catalog, offers) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = NaiveBayesMatcher::new().score_candidates(&catalog, &offers, &provider);
        let find = |ap: &str| scored.iter().find(|c| c.catalog_attribute == ap).unwrap();
        assert_eq!(find("Brand").merchant_attribute, "make");
        assert_eq!(find("Interface").merchant_attribute, "connection");
        assert!(find("Brand").score > 0.5);
    }

    #[test]
    fn one_candidate_per_catalog_attribute() {
        let (catalog, offers) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = NaiveBayesMatcher::new().score_candidates(&catalog, &offers, &provider);
        assert_eq!(scored.len(), 2);
    }

    #[test]
    fn empty_offers_produce_nothing() {
        let (catalog, _) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = NaiveBayesMatcher::new().score_candidates(&catalog, &[], &provider);
        assert!(scored.is_empty());
    }
}
