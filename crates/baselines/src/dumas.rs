//! DUMAS (Bilke & Naumann, ICDE 2005), implemented per the paper's
//! Appendix C.
//!
//! For each category `C` and each known duplicate — a product `p` matched
//! to an offer `o` of merchant `M` — build an `m × n` similarity matrix
//! `S_k` whose cells compare each product field value with each offer field
//! value under SoftTFIDF. Average the matrices of merchant `M`:
//! `S_M = (1/T) Σ S_k`, then solve maximum-weight bipartite matching on
//! `S_M`; every matched cell becomes a candidate correspondence scored by
//! its cell weight.
//!
//! [`DumasMatcher::score_candidates`] runs on the interned SoftTFIDF
//! kernel: per (merchant, category) group, each distinct field value is
//! tokenized and TF-IDF-weighted once, and Jaro–Winkler scores are memoized
//! per token pair across the whole matrix build. Scores are bit-identical
//! to [`DumasMatcher::score_candidates_reference`], the retained
//! string-based implementation.

use std::collections::HashMap;

use pse_assignment::{hungarian_max_matching, Matrix};
use pse_core::{Catalog, CategoryId, HistoricalMatches, MerchantId, Offer, ProductId};
use pse_synthesis::{ScoredCandidate, SpecProvider};
use pse_text::normalize::normalize_attribute_name;
use pse_text::tfidf::{InternedCorpusBuilder, TfIdfCorpus};
use pse_text::{BagOfWords, InternedSoftTfIdf, InternerBuilder, JwMemo, SoftTfIdf};

/// The DUMAS matcher.
#[derive(Debug, Clone)]
pub struct DumasMatcher {
    /// Inner-similarity threshold θ of SoftTFIDF (0.9 in the original work).
    pub theta: f64,
}

impl Default for DumasMatcher {
    fn default() -> Self {
        Self { theta: 0.9 }
    }
}

/// One known duplicate: a matched product and the offer's normalized spec.
struct Dup {
    product: ProductId,
    offer_spec: Vec<(String, String)>, // (normalized attr, value)
}

/// Group duplicates by (merchant, category) in sorted key order,
/// materializing offer specs once.
fn group_duplicates<P: SpecProvider>(
    offers: &[Offer],
    historical: &HistoricalMatches,
    provider: &P,
) -> Vec<((MerchantId, CategoryId), Vec<Dup>)> {
    let mut groups: HashMap<(MerchantId, CategoryId), Vec<Dup>> = HashMap::new();
    for offer in offers {
        let Some(product) = historical.product_of(offer.id) else { continue };
        let Some(category) = offer.category else { continue };
        let spec = provider.spec(offer);
        let offer_spec: Vec<(String, String)> = spec
            .iter()
            .map(|p| (normalize_attribute_name(&p.name), p.value.clone()))
            .filter(|(n, _)| !n.is_empty())
            .collect();
        groups.entry((offer.merchant, category)).or_default().push(Dup { product, offer_spec });
    }
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let dups = groups.remove(&k).expect("key");
            (k, dups)
        })
        .collect()
}

impl DumasMatcher {
    /// A matcher with the standard θ = 0.9.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produce scored candidate correspondences from the same historical
    /// offer-to-product matches our approach uses.
    pub fn score_candidates<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        let _span = pse_obs::span("baselines.dumas");
        // The memo counters may stay at zero (no groups, or exact-match-only
        // cells); seed them so reports always carry them with the span.
        pse_obs::seed("softtfidf.jw_memo_hit");
        pse_obs::seed("softtfidf.jw_memo_miss");
        let mut out = Vec::new();
        let grouped = group_duplicates(offers, historical, provider);
        for ((merchant, category), dups) in grouped {
            let schema = catalog.taxonomy().schema(category);
            let catalog_attrs: Vec<&str> = schema.attribute_names().collect();
            // Column axis: union of merchant attributes over all duplicates,
            // sorted for determinism.
            let mut merchant_attrs: Vec<String> =
                dups.iter().flat_map(|d| d.offer_spec.iter().map(|(n, _)| n.clone())).collect();
            merchant_attrs.sort();
            merchant_attrs.dedup();
            if merchant_attrs.is_empty() || catalog_attrs.is_empty() {
                continue;
            }

            // Shared IDF corpus over every field value in the group: one
            // document per value *occurrence* (like the reference), but each
            // distinct value string is tokenized only once.
            let mut builder = InternerBuilder::new();
            let mut corpus_builder = InternedCorpusBuilder::new();
            let mut raw_values: HashMap<String, Vec<u32>> = HashMap::new();
            {
                let mut add_value = |v: &str| {
                    let raw = match raw_values.get(v) {
                        Some(raw) => raw,
                        None => {
                            let raw = builder.tokenize(v);
                            raw_values.entry(v.to_string()).or_insert(raw)
                        }
                    };
                    corpus_builder.add_document(raw.iter().copied());
                };
                for d in &dups {
                    for (_, v) in &d.offer_spec {
                        add_value(v);
                    }
                    let p = catalog.product(d.product);
                    for pair in p.spec.iter() {
                        add_value(&pair.value);
                    }
                }
            }
            let interner = builder.finalize();
            let corpus = corpus_builder.finalize(&interner);
            let soft = InternedSoftTfIdf::new(interner, corpus, self.theta);
            // Pre-weight each distinct value once (the reference recomputed
            // the TF-IDF vector of both cell values for every cell).
            let docs: HashMap<&str, pse_text::SoftDoc> =
                raw_values.iter().map(|(v, raw)| (v.as_str(), soft.doc(raw))).collect();
            // One Jaro–Winkler memo per matrix build, plus a cell memo: the
            // same (product value, offer value) string pair recurs across
            // duplicates (and across cells when merchants repeat values),
            // and SoftTFIDF similarity is a pure function of the two values
            // under the group corpus.
            let mut memo = JwMemo::new();
            let mut cell_memo: HashMap<(&str, &str), f64> = HashMap::new();

            // Average the per-duplicate similarity matrices.
            let mut sum = Matrix::zeros(catalog_attrs.len(), merchant_attrs.len());
            for d in &dups {
                let product = catalog.product(d.product);
                let offer_values: HashMap<&str, &str> =
                    d.offer_spec.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
                let mut s_k = Matrix::zeros(catalog_attrs.len(), merchant_attrs.len());
                for (i, ap) in catalog_attrs.iter().enumerate() {
                    let Some(pv) = product.spec.get(ap) else { continue };
                    for (j, ao) in merchant_attrs.iter().enumerate() {
                        if let Some(ov) = offer_values.get(ao.as_str()) {
                            s_k[(i, j)] = match cell_memo.get(&(pv, *ov)) {
                                Some(&s) => s,
                                None => {
                                    let s = soft.similarity(&docs[pv], &docs[ov], &mut memo);
                                    cell_memo.insert((pv, *ov), s);
                                    s
                                }
                            };
                        }
                    }
                }
                sum.add_assign(&s_k);
            }
            sum.scale(1.0 / dups.len() as f64);

            // Maximum-weight bipartite matching on S_M.
            for a in hungarian_max_matching(&sum) {
                let ap = catalog_attrs[a.row];
                let ao = &merchant_attrs[a.col];
                out.push(ScoredCandidate {
                    catalog_attribute: ap.to_string(),
                    merchant_attribute: ao.clone(),
                    merchant,
                    category,
                    score: a.weight,
                    is_name_identity: normalize_attribute_name(ap) == *ao,
                });
            }
        }
        out
    }

    /// The original string-based implementation, kept as the oracle for the
    /// interned fast path (every `S_k` cell recomputes both TF-IDF vectors
    /// and rescans token pairs). Bit-identical output to
    /// [`Self::score_candidates`].
    pub fn score_candidates_reference<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        let mut out = Vec::new();
        for ((merchant, category), dups) in group_duplicates(offers, historical, provider) {
            let schema = catalog.taxonomy().schema(category);
            let catalog_attrs: Vec<&str> = schema.attribute_names().collect();
            let mut merchant_attrs: Vec<String> =
                dups.iter().flat_map(|d| d.offer_spec.iter().map(|(n, _)| n.clone())).collect();
            merchant_attrs.sort();
            merchant_attrs.dedup();
            if merchant_attrs.is_empty() || catalog_attrs.is_empty() {
                continue;
            }

            // Shared IDF corpus over every field value in the group.
            let mut corpus = TfIdfCorpus::new();
            for d in &dups {
                for (_, v) in &d.offer_spec {
                    corpus.add_document(&BagOfWords::from_values([v.as_str()]));
                }
                let p = catalog.product(d.product);
                for pair in p.spec.iter() {
                    corpus.add_document(&BagOfWords::from_values([pair.value.as_str()]));
                }
            }
            let soft = SoftTfIdf::with_theta(corpus, self.theta);

            // Average the per-duplicate similarity matrices.
            let mut sum = Matrix::zeros(catalog_attrs.len(), merchant_attrs.len());
            for d in &dups {
                let product = catalog.product(d.product);
                let offer_values: HashMap<&str, &str> =
                    d.offer_spec.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
                let mut s_k = Matrix::zeros(catalog_attrs.len(), merchant_attrs.len());
                for (i, ap) in catalog_attrs.iter().enumerate() {
                    let Some(pv) = product.spec.get(ap) else { continue };
                    for (j, ao) in merchant_attrs.iter().enumerate() {
                        if let Some(ov) = offer_values.get(ao.as_str()) {
                            s_k[(i, j)] = soft.similarity(pv, ov);
                        }
                    }
                }
                sum.add_assign(&s_k);
            }
            sum.scale(1.0 / dups.len() as f64);

            for a in hungarian_max_matching(&sum) {
                let ap = catalog_attrs[a.row];
                let ao = &merchant_attrs[a.col];
                out.push(ScoredCandidate {
                    catalog_attribute: ap.to_string(),
                    merchant_attribute: ao.clone(),
                    merchant,
                    category,
                    score: a.weight,
                    is_name_identity: normalize_attribute_name(ap) == *ao,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, OfferId, Spec, Taxonomy};
    use pse_synthesis::FnProvider;

    /// Duplicates share near-identical field values, which is exactly the
    /// situation DUMAS exploits.
    fn scenario() -> (Catalog, Vec<Offer>, HistoricalMatches) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Brand", AttributeKind::Text),
                AttributeDef::new("Speed", AttributeKind::Numeric),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let mut offers = Vec::new();
        let mut hist = HistoricalMatches::new();
        for (i, (brand, speed)) in
            [("Seagate", "5400"), ("Hitachi", "7200"), ("Samsung", "10000")].iter().enumerate()
        {
            let pid = catalog.add_product(
                cat,
                format!("p{i}"),
                Spec::from_pairs([("Brand", *brand), ("Speed", *speed)]),
            );
            let oid = OfferId(i as u64);
            offers.push(Offer {
                id: oid,
                merchant: MerchantId(0),
                price_cents: 1,
                image_url: None,
                category: Some(cat),
                url: String::new(),
                title: String::new(),
                spec: Spec::from_pairs([("Manufacturer", *brand), ("RPM", *speed)]),
            });
            hist.insert(oid, pid);
        }
        (catalog, offers, hist)
    }

    #[test]
    fn finds_correspondences_from_duplicates() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = DumasMatcher::new().score_candidates(&catalog, &offers, &hist, &provider);
        assert_eq!(scored.len(), 2, "bipartite matching yields one per attr");
        let find = |ap: &str| scored.iter().find(|c| c.catalog_attribute == ap).unwrap();
        assert_eq!(find("Brand").merchant_attribute, "manufacturer");
        assert_eq!(find("Speed").merchant_attribute, "rpm");
        assert!(find("Brand").score > 0.9);
    }

    #[test]
    fn one_to_one_constraint_holds() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = DumasMatcher::new().score_candidates(&catalog, &offers, &hist, &provider);
        let mut aps: Vec<_> = scored.iter().map(|c| c.catalog_attribute.clone()).collect();
        let mut aos: Vec<_> = scored.iter().map(|c| c.merchant_attribute.clone()).collect();
        aps.sort();
        aps.dedup();
        aos.sort();
        aos.dedup();
        assert_eq!(aps.len(), scored.len());
        assert_eq!(aos.len(), scored.len());
    }

    #[test]
    fn no_history_no_output() {
        let (catalog, offers, _) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = DumasMatcher::new().score_candidates(
            &catalog,
            &offers,
            &HistoricalMatches::new(),
            &provider,
        );
        assert!(scored.is_empty());
    }

    #[test]
    fn dumas_fails_without_value_overlap() {
        // When offer values are formatted beyond SoftTFIDF's reach, DUMAS
        // produces weak or missing matches — the paper's argument for why
        // redundancy alone is insufficient in product synthesis.
        let (catalog, mut offers, hist) = scenario();
        for o in &mut offers {
            let pairs: Vec<(String, String)> = o
                .spec
                .iter()
                .map(|p| (p.name.clone(), format!("approx {} units", p.value)))
                .collect();
            o.spec = Spec::from_pairs(pairs);
        }
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = DumasMatcher::new().score_candidates(&catalog, &offers, &hist, &provider);
        for c in &scored {
            assert!(c.score < 0.9, "diluted values should score lower: {c:?}");
        }
    }

    /// The interned fast path must reproduce the reference bit-for-bit,
    /// including fuzzy (θ-close) matches and non-ASCII values.
    #[test]
    fn interned_path_matches_reference() {
        let (catalog, mut offers, hist) = scenario();
        // Introduce typos and non-ASCII so soft matches and the Unicode
        // tokenizer path are exercised.
        offers[0].spec = Spec::from_pairs([("Manufacturer", "Seagaet"), ("RPM", "5400 tr/min")]);
        offers[1].spec = Spec::from_pairs([("Manufacturer", "Hitachi"), ("RPM", "7200 U/min ü")]);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let m = DumasMatcher::new();
        let fast = m.score_candidates(&catalog, &offers, &hist, &provider);
        let slow = m.score_candidates_reference(&catalog, &offers, &hist, &provider);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.catalog_attribute, s.catalog_attribute);
            assert_eq!(f.merchant_attribute, s.merchant_attribute);
            assert_eq!(f.score.to_bits(), s.score.to_bits(), "{}", f.catalog_attribute);
        }
    }
}
