//! COMA++-style matchers (Do & Rahm, VLDB 2002; Engmann & Maßmann, BTW
//! 2007): a library of name and instance matchers with combination and the
//! `δ` (maxDelta) candidate-selection strategy — the configurations the
//! paper compares against in Figures 8 and 9.
//!
//! * **Name matchers**: normalized edit-distance similarity and trigram
//!   (Dice) similarity over attribute names, averaged.
//! * **Instance matcher**: TF-IDF cosine between the token bags of the
//!   catalog attribute's values (over all products of the category) and the
//!   merchant attribute's values (over all offers of the merchant in the
//!   category). COMA++ has no notion of historical instance matches.
//! * **Combined**: the average of name and instance scores.
//! * **δ selection**: for every merchant attribute, keep the candidates
//!   whose score is within `δ` of that attribute's best candidate
//!   (`δ = 0.01` is COMA++'s default; `δ = ∞` keeps every pair, Figure 9).

use std::collections::HashMap;

use pse_core::{Catalog, CategoryId, MerchantId, Offer};
use pse_synthesis::{ScoredCandidate, SpecProvider};
use pse_text::normalize::normalize_attribute_name;
use pse_text::strsim::{levenshtein_similarity, trigram_dice};
use pse_text::tfidf::TfIdfCorpus;
use pse_text::BagOfWords;

/// Which matcher combination to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComaStrategy {
    /// Name matchers only (edit distance + trigram, averaged).
    Name,
    /// Instance matcher only (TF-IDF cosine of value bags).
    Instance,
    /// Average of name and instance scores.
    Combined,
}

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct ComaConfig {
    /// The matcher combination.
    pub strategy: ComaStrategy,
    /// maxDelta selection: keep candidates within `delta` of the best
    /// candidate per merchant attribute. `f64::INFINITY` keeps all pairs.
    pub delta: f64,
}

impl ComaConfig {
    /// COMA++'s default δ = 0.01.
    pub fn new(strategy: ComaStrategy) -> Self {
        Self { strategy, delta: 0.01 }
    }

    /// Keep every candidate pair (δ = ∞), ranked by score.
    pub fn with_unbounded_delta(strategy: ComaStrategy) -> Self {
        Self { strategy, delta: f64::INFINITY }
    }
}

/// The COMA++-style matcher.
#[derive(Debug, Clone, Copy)]
pub struct ComaMatcher {
    config: ComaConfig,
}

impl ComaMatcher {
    /// A matcher with the given configuration.
    pub fn new(config: ComaConfig) -> Self {
        Self { config }
    }

    /// Score candidates for all (merchant, category) pairs present in
    /// `offers`.
    pub fn score_candidates<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        // Offer value bags per (merchant, category, attr).
        let mut offer_bags: HashMap<(MerchantId, CategoryId), HashMap<String, BagOfWords>> =
            HashMap::new();
        for offer in offers {
            let Some(category) = offer.category else { continue };
            let spec = provider.spec(offer);
            let slot = offer_bags.entry((offer.merchant, category)).or_default();
            for p in spec.iter() {
                let n = normalize_attribute_name(&p.name);
                if !n.is_empty() {
                    slot.entry(n).or_default().add_value(&p.value);
                }
            }
        }

        // Catalog value bags per category (built lazily).
        let mut catalog_bags: HashMap<CategoryId, HashMap<String, BagOfWords>> = HashMap::new();

        let mut keys: Vec<_> = offer_bags.keys().copied().collect();
        keys.sort();
        let mut out = Vec::new();
        for (merchant, category) in keys {
            let cat_bags = catalog_bags.entry(category).or_insert_with(|| {
                let mut bags: HashMap<String, BagOfWords> = HashMap::new();
                for product in catalog.products_in(category) {
                    for pair in product.spec.iter() {
                        bags.entry(normalize_attribute_name(&pair.name))
                            .or_default()
                            .add_value(&pair.value);
                    }
                }
                bags
            });
            let schema = catalog.taxonomy().schema(category);
            let merchant_attrs = &offer_bags[&(merchant, category)];
            let mut sorted_aos: Vec<&String> = merchant_attrs.keys().collect();
            sorted_aos.sort();

            // TF-IDF corpus: one document per attribute value corpus.
            let mut corpus = TfIdfCorpus::new();
            for bag in cat_bags.values() {
                corpus.add_document(bag);
            }
            for bag in merchant_attrs.values() {
                corpus.add_document(bag);
            }

            for ao in sorted_aos {
                let mut candidates: Vec<ScoredCandidate> = Vec::new();
                for ap in schema.iter() {
                    let ap_norm = ap.normalized_name();
                    let name_score = 0.5 * levenshtein_similarity(&ap_norm, ao)
                        + 0.5 * trigram_dice(&ap_norm, ao);
                    let instance_score = match cat_bags.get(&ap_norm) {
                        Some(pb) => corpus.cosine(pb, &merchant_attrs[ao]),
                        None => 0.0,
                    };
                    let score = match self.config.strategy {
                        ComaStrategy::Name => name_score,
                        ComaStrategy::Instance => instance_score,
                        ComaStrategy::Combined => 0.5 * (name_score + instance_score),
                    };
                    candidates.push(ScoredCandidate {
                        catalog_attribute: ap.name.clone(),
                        merchant_attribute: ao.clone(),
                        merchant,
                        category,
                        score,
                        is_name_identity: ap_norm == *ao,
                    });
                }
                // δ selection per merchant attribute.
                let best = candidates.iter().map(|c| c.score).fold(f64::NEG_INFINITY, f64::max);
                out.extend(
                    candidates
                        .into_iter()
                        .filter(|c| c.score > 0.0 && best - c.score <= self.config.delta),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, OfferId, Spec, Taxonomy};
    use pse_synthesis::FnProvider;

    fn scenario() -> (Catalog, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Interface Type", AttributeKind::Text),
                AttributeDef::new("Speed", AttributeKind::Numeric),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        for (iface, speed) in [("SATA 300", "7200"), ("IDE 133", "5400"), ("SCSI 320", "10000")] {
            catalog.add_product(
                cat,
                "p",
                Spec::from_pairs([("Interface Type", iface), ("Speed", speed)]),
            );
        }
        let offers = vec![Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 1,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs([("Int. Type", "SATA 300"), ("RPM", "7200")]),
        }];
        (catalog, offers)
    }

    fn run(cfg: ComaConfig) -> Vec<ScoredCandidate> {
        let (catalog, offers) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        ComaMatcher::new(cfg).score_candidates(&catalog, &offers, &provider)
    }

    #[test]
    fn name_matcher_favors_similar_names() {
        let scored = run(ComaConfig::with_unbounded_delta(ComaStrategy::Name));
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .map(|c| c.score)
                .unwrap_or(0.0)
        };
        assert!(get("Interface Type", "int type") > get("Speed", "int type"));
    }

    #[test]
    fn instance_matcher_favors_shared_values() {
        let scored = run(ComaConfig::with_unbounded_delta(ComaStrategy::Instance));
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .map(|c| c.score)
                .unwrap_or(0.0)
        };
        assert!(get("Speed", "rpm") > get("Interface Type", "rpm"));
        assert!(get("Interface Type", "int type") > get("Speed", "int type"));
    }

    #[test]
    fn default_delta_keeps_fewer_candidates_than_unbounded() {
        let tight = run(ComaConfig::new(ComaStrategy::Combined));
        let loose = run(ComaConfig::with_unbounded_delta(ComaStrategy::Combined));
        assert!(tight.len() <= loose.len());
        assert!(!tight.is_empty());
    }

    #[test]
    fn combined_is_average_of_parts() {
        let name = run(ComaConfig::with_unbounded_delta(ComaStrategy::Name));
        let inst = run(ComaConfig::with_unbounded_delta(ComaStrategy::Instance));
        let comb = run(ComaConfig::with_unbounded_delta(ComaStrategy::Combined));
        for c in &comb {
            let n = name
                .iter()
                .find(|x| {
                    x.catalog_attribute == c.catalog_attribute
                        && x.merchant_attribute == c.merchant_attribute
                })
                .map(|x| x.score)
                .unwrap_or(0.0);
            let i = inst
                .iter()
                .find(|x| {
                    x.catalog_attribute == c.catalog_attribute
                        && x.merchant_attribute == c.merchant_attribute
                })
                .map(|x| x.score)
                .unwrap_or(0.0);
            assert!((c.score - 0.5 * (n + i)).abs() < 1e-9);
        }
    }
}
