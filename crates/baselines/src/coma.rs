//! COMA++-style matchers (Do & Rahm, VLDB 2002; Engmann & Maßmann, BTW
//! 2007): a library of name and instance matchers with combination and the
//! `δ` (maxDelta) candidate-selection strategy — the configurations the
//! paper compares against in Figures 8 and 9.
//!
//! * **Name matchers**: normalized edit-distance similarity and trigram
//!   (Dice) similarity over attribute names, averaged.
//! * **Instance matcher**: TF-IDF cosine between the token bags of the
//!   catalog attribute's values (over all products of the category) and the
//!   merchant attribute's values (over all offers of the merchant in the
//!   category). COMA++ has no notion of historical instance matches.
//! * **Combined**: the average of name and instance scores.
//! * **δ selection**: for every merchant attribute, keep the candidates
//!   whose score is within `δ` of that attribute's best candidate
//!   (`δ = 0.01` is COMA++'s default; `δ = ∞` keeps every pair, Figure 9).
//!
//! Scoring is split into [`ComaIndex::build`] — tokenize + intern every
//! value once per category, weight each attribute bag once per group, cache
//! name scores per (Ap, Ao) — and the cheap, strategy-dependent
//! [`ComaMatcher::score_with_index`]. One index serves every strategy/δ
//! configuration (the Figure 8/9 sweeps score the same index several
//! times), and scores are bit-identical to the historical per-pair
//! recomputation: weight vectors accumulate in sorted-token order and
//! cosine is the same merge-join sum (see `pse_text::sparse`).

use std::collections::{HashMap, HashSet};

use pse_core::{Catalog, CategoryId, MerchantId, Offer};
use pse_synthesis::{ScoredCandidate, SpecProvider};
use pse_text::normalize::normalize_attribute_name;
use pse_text::sparse::{cosine_sparse, SparseCounts, SparseVec};
use pse_text::strsim::{levenshtein_similarity, trigram_dice};
use pse_text::tfidf::InternedCorpus;
use pse_text::tokenize::for_each_token;
use pse_text::{Interner, InternerBuilder};

/// Which matcher combination to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComaStrategy {
    /// Name matchers only (edit distance + trigram, averaged).
    Name,
    /// Instance matcher only (TF-IDF cosine of value bags).
    Instance,
    /// Average of name and instance scores.
    Combined,
}

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct ComaConfig {
    /// The matcher combination.
    pub strategy: ComaStrategy,
    /// maxDelta selection: keep candidates within `delta` of the best
    /// candidate per merchant attribute. `f64::INFINITY` keeps all pairs.
    pub delta: f64,
}

impl ComaConfig {
    /// COMA++'s default δ = 0.01.
    pub fn new(strategy: ComaStrategy) -> Self {
        Self { strategy, delta: 0.01 }
    }

    /// Keep every candidate pair (δ = ∞), ranked by score.
    pub fn with_unbounded_delta(strategy: ComaStrategy) -> Self {
        Self { strategy, delta: f64::INFINITY }
    }
}

/// Precomputed scoring inputs for every (merchant, category) group: all the
/// strategy-independent work of COMA++ scoring.
#[derive(Debug)]
pub struct ComaIndex {
    groups: Vec<GroupIndex>,
}

#[derive(Debug)]
struct GroupIndex {
    merchant: MerchantId,
    category: CategoryId,
    /// Merchant attribute names (normalized), sorted.
    merchant_attrs: Vec<String>,
    /// Per-group TF-IDF weight vector of each merchant attribute's value
    /// bag, aligned with `merchant_attrs`.
    offer_vecs: Vec<SparseVec>,
    /// Catalog schema attributes in schema order.
    catalog_attrs: Vec<CatalogAttr>,
}

#[derive(Debug)]
struct CatalogAttr {
    /// Surface name from the schema.
    name: String,
    /// Normalized name.
    norm: String,
    /// `0.5·levenshtein + 0.5·trigram` per merchant attribute, aligned with
    /// `merchant_attrs`.
    name_scores: Vec<f64>,
    /// Weight vector of the catalog attribute's value bag; `None` when no
    /// product of the category carries the attribute.
    vec: Option<SparseVec>,
}

impl ComaIndex {
    /// Build the index: intern every value of the categories seen in
    /// `offers`, weight every attribute bag once per (merchant, category)
    /// group, and cache the name scores.
    pub fn build<P: SpecProvider>(catalog: &Catalog, offers: &[Offer], provider: &P) -> Self {
        let _span = pse_obs::span("baselines.coma_index");
        // Offer value bags per (merchant, category, attr), as provisional-id
        // counts under one interner per category.
        let mut builders: HashMap<CategoryId, InternerBuilder> = HashMap::new();
        let mut offer_raw: HashMap<(MerchantId, CategoryId), HashMap<String, HashMap<u32, u64>>> =
            HashMap::new();
        for offer in offers {
            let Some(category) = offer.category else { continue };
            let spec = provider.spec(offer);
            let builder = builders.entry(category).or_default();
            let slot = offer_raw.entry((offer.merchant, category)).or_default();
            for p in spec.iter() {
                let n = normalize_attribute_name(&p.name);
                if n.is_empty() {
                    continue;
                }
                let bag = slot.entry(n).or_default();
                for_each_token(&p.value, |t| *bag.entry(builder.intern(t)).or_insert(0) += 1);
            }
        }

        // Catalog value bags per category (note: the catalog side keeps
        // empty normalized names, matching the historical implementation).
        let categories: HashSet<CategoryId> = offer_raw.keys().map(|&(_, c)| c).collect();
        let mut cat_raw: HashMap<CategoryId, HashMap<String, HashMap<u32, u64>>> = HashMap::new();
        for &category in &categories {
            let builder = builders.entry(category).or_default();
            let bags = cat_raw.entry(category).or_default();
            for product in catalog.products_in(category) {
                for pair in product.spec.iter() {
                    let bag = bags.entry(normalize_attribute_name(&pair.name)).or_default();
                    for_each_token(&pair.value, |t| {
                        *bag.entry(builder.intern(t)).or_insert(0) += 1
                    });
                }
            }
        }

        let interners: HashMap<CategoryId, Interner> =
            builders.into_iter().map(|(c, b)| (c, b.finalize())).collect();
        let to_counts = |interner: &Interner, m: HashMap<String, HashMap<u32, u64>>| {
            m.into_iter()
                .map(|(name, bag)| {
                    let pairs = bag.into_iter().map(|(p, c)| (interner.sym(p), c)).collect();
                    (name, SparseCounts::from_unsorted(pairs))
                })
                .collect::<HashMap<String, SparseCounts>>()
        };
        let cat_counts: HashMap<CategoryId, HashMap<String, SparseCounts>> = cat_raw
            .into_iter()
            .map(|(c, m)| {
                let counts = to_counts(&interners[&c], m);
                (c, counts)
            })
            .collect();

        let mut keys: Vec<_> = offer_raw.keys().copied().collect();
        keys.sort();
        // Name scores depend only on the two attribute names, and merchants
        // within a category share most attribute names — cache across groups
        // so each distinct (catalog, merchant) name pair is scored once.
        let mut name_score_cache: HashMap<String, HashMap<String, f64>> = HashMap::new();
        let mut groups = Vec::new();
        for (merchant, category) in keys {
            let interner = &interners[&category];
            let cats = &cat_counts[&category];
            let offer_counts =
                to_counts(interner, offer_raw.remove(&(merchant, category)).expect("key"));

            // Per-group corpus: one document per attribute value bag
            // (catalog attributes of the category + this merchant's
            // attributes), like the historical `TfIdfCorpus` build.
            let mut doc_freq = vec![0u32; interner.len()];
            let mut num_docs = 0u32;
            for counts in cats.values().chain(offer_counts.values()) {
                num_docs += 1;
                for &(s, _) in counts.entries() {
                    doc_freq[s.0 as usize] += 1;
                }
            }
            let corpus = InternedCorpus::from_doc_freq(doc_freq, num_docs);

            let mut merchant_attrs: Vec<String> = offer_counts.keys().cloned().collect();
            merchant_attrs.sort();
            let offer_vecs: Vec<SparseVec> =
                merchant_attrs.iter().map(|ao| corpus.weight_counts(&offer_counts[ao])).collect();

            let schema = catalog.taxonomy().schema(category);
            let catalog_attrs: Vec<CatalogAttr> = schema
                .iter()
                .map(|ap| {
                    let norm = ap.normalized_name();
                    let per_norm = name_score_cache.entry(norm.clone()).or_default();
                    let name_scores = merchant_attrs
                        .iter()
                        .map(|ao| match per_norm.get(ao.as_str()) {
                            Some(&s) => s,
                            None => {
                                let s = 0.5 * levenshtein_similarity(&norm, ao)
                                    + 0.5 * trigram_dice(&norm, ao);
                                per_norm.insert(ao.clone(), s);
                                s
                            }
                        })
                        .collect();
                    let vec = cats.get(&norm).map(|counts| corpus.weight_counts(counts));
                    CatalogAttr { name: ap.name.clone(), norm, name_scores, vec }
                })
                .collect();

            groups.push(GroupIndex {
                merchant,
                category,
                merchant_attrs,
                offer_vecs,
                catalog_attrs,
            });
        }
        Self { groups }
    }
}

/// The COMA++-style matcher.
#[derive(Debug, Clone, Copy)]
pub struct ComaMatcher {
    config: ComaConfig,
}

impl ComaMatcher {
    /// A matcher with the given configuration.
    pub fn new(config: ComaConfig) -> Self {
        Self { config }
    }

    /// Score candidates for all (merchant, category) pairs present in
    /// `offers`.
    pub fn score_candidates<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        let index = ComaIndex::build(catalog, offers, provider);
        self.score_with_index(&index)
    }

    /// Score candidates over a pre-built index (the index is
    /// strategy-independent, so sweeps over strategies/δ share one build).
    pub fn score_with_index(&self, index: &ComaIndex) -> Vec<ScoredCandidate> {
        let mut out = Vec::new();
        for g in &index.groups {
            for (j, ao) in g.merchant_attrs.iter().enumerate() {
                let mut candidates: Vec<ScoredCandidate> = Vec::new();
                for ca in &g.catalog_attrs {
                    let name_score = ca.name_scores[j];
                    let instance_score = match &ca.vec {
                        Some(pv) => cosine_sparse(pv, &g.offer_vecs[j]),
                        None => 0.0,
                    };
                    let score = match self.config.strategy {
                        ComaStrategy::Name => name_score,
                        ComaStrategy::Instance => instance_score,
                        ComaStrategy::Combined => 0.5 * (name_score + instance_score),
                    };
                    candidates.push(ScoredCandidate {
                        catalog_attribute: ca.name.clone(),
                        merchant_attribute: ao.clone(),
                        merchant: g.merchant,
                        category: g.category,
                        score,
                        is_name_identity: ca.norm == *ao,
                    });
                }
                // δ selection per merchant attribute.
                let best = candidates.iter().map(|c| c.score).fold(f64::NEG_INFINITY, f64::max);
                out.extend(
                    candidates
                        .into_iter()
                        .filter(|c| c.score > 0.0 && best - c.score <= self.config.delta),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, OfferId, Spec, Taxonomy};
    use pse_synthesis::FnProvider;
    use pse_text::tfidf::TfIdfCorpus;
    use pse_text::BagOfWords;

    fn scenario() -> (Catalog, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Interface Type", AttributeKind::Text),
                AttributeDef::new("Speed", AttributeKind::Numeric),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        for (iface, speed) in [("SATA 300", "7200"), ("IDE 133", "5400"), ("SCSI 320", "10000")] {
            catalog.add_product(
                cat,
                "p",
                Spec::from_pairs([("Interface Type", iface), ("Speed", speed)]),
            );
        }
        let offers = vec![Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 1,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs([("Int. Type", "SATA 300"), ("RPM", "7200")]),
        }];
        (catalog, offers)
    }

    fn run(cfg: ComaConfig) -> Vec<ScoredCandidate> {
        let (catalog, offers) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        ComaMatcher::new(cfg).score_candidates(&catalog, &offers, &provider)
    }

    #[test]
    fn name_matcher_favors_similar_names() {
        let scored = run(ComaConfig::with_unbounded_delta(ComaStrategy::Name));
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .map(|c| c.score)
                .unwrap_or(0.0)
        };
        assert!(get("Interface Type", "int type") > get("Speed", "int type"));
    }

    #[test]
    fn instance_matcher_favors_shared_values() {
        let scored = run(ComaConfig::with_unbounded_delta(ComaStrategy::Instance));
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .map(|c| c.score)
                .unwrap_or(0.0)
        };
        assert!(get("Speed", "rpm") > get("Interface Type", "rpm"));
        assert!(get("Interface Type", "int type") > get("Speed", "int type"));
    }

    #[test]
    fn default_delta_keeps_fewer_candidates_than_unbounded() {
        let tight = run(ComaConfig::new(ComaStrategy::Combined));
        let loose = run(ComaConfig::with_unbounded_delta(ComaStrategy::Combined));
        assert!(tight.len() <= loose.len());
        assert!(!tight.is_empty());
    }

    #[test]
    fn combined_is_average_of_parts() {
        let name = run(ComaConfig::with_unbounded_delta(ComaStrategy::Name));
        let inst = run(ComaConfig::with_unbounded_delta(ComaStrategy::Instance));
        let comb = run(ComaConfig::with_unbounded_delta(ComaStrategy::Combined));
        for c in &comb {
            let n = name
                .iter()
                .find(|x| {
                    x.catalog_attribute == c.catalog_attribute
                        && x.merchant_attribute == c.merchant_attribute
                })
                .map(|x| x.score)
                .unwrap_or(0.0);
            let i = inst
                .iter()
                .find(|x| {
                    x.catalog_attribute == c.catalog_attribute
                        && x.merchant_attribute == c.merchant_attribute
                })
                .map(|x| x.score)
                .unwrap_or(0.0);
            assert!((c.score - 0.5 * (n + i)).abs() < 1e-9);
        }
    }

    /// The interned index must reproduce the historical per-pair TF-IDF
    /// recomputation bit-for-bit. The reference below is a transliteration
    /// of the pre-index implementation (string bags, one `TfIdfCorpus` per
    /// group, `corpus.cosine` per cell).
    #[test]
    fn indexed_scores_match_string_reference() {
        let (catalog, offers) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        for cfg in [
            ComaConfig::with_unbounded_delta(ComaStrategy::Name),
            ComaConfig::with_unbounded_delta(ComaStrategy::Instance),
            ComaConfig::with_unbounded_delta(ComaStrategy::Combined),
            ComaConfig::new(ComaStrategy::Combined),
        ] {
            let fast = ComaMatcher::new(cfg).score_candidates(&catalog, &offers, &provider);
            let slow = reference_score(cfg, &catalog, &offers, &provider);
            assert_eq!(fast.len(), slow.len(), "{cfg:?}");
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.catalog_attribute, s.catalog_attribute, "{cfg:?}");
                assert_eq!(f.merchant_attribute, s.merchant_attribute, "{cfg:?}");
                assert_eq!(
                    f.score.to_bits(),
                    s.score.to_bits(),
                    "{cfg:?} {}/{}: {} vs {}",
                    f.catalog_attribute,
                    f.merchant_attribute,
                    f.score,
                    s.score
                );
                assert_eq!(f.is_name_identity, s.is_name_identity, "{cfg:?}");
            }
        }
    }

    fn reference_score<P: SpecProvider>(
        config: ComaConfig,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        let mut offer_bags: HashMap<(MerchantId, CategoryId), HashMap<String, BagOfWords>> =
            HashMap::new();
        for offer in offers {
            let Some(category) = offer.category else { continue };
            let spec = provider.spec(offer);
            let slot = offer_bags.entry((offer.merchant, category)).or_default();
            for p in spec.iter() {
                let n = normalize_attribute_name(&p.name);
                if !n.is_empty() {
                    slot.entry(n).or_default().add_value(&p.value);
                }
            }
        }
        let mut catalog_bags: HashMap<CategoryId, HashMap<String, BagOfWords>> = HashMap::new();
        let mut keys: Vec<_> = offer_bags.keys().copied().collect();
        keys.sort();
        let mut out = Vec::new();
        for (merchant, category) in keys {
            let cat_bags = catalog_bags.entry(category).or_insert_with(|| {
                let mut bags: HashMap<String, BagOfWords> = HashMap::new();
                for product in catalog.products_in(category) {
                    for pair in product.spec.iter() {
                        bags.entry(normalize_attribute_name(&pair.name))
                            .or_default()
                            .add_value(&pair.value);
                    }
                }
                bags
            });
            let schema = catalog.taxonomy().schema(category);
            let merchant_attrs = &offer_bags[&(merchant, category)];
            let mut sorted_aos: Vec<&String> = merchant_attrs.keys().collect();
            sorted_aos.sort();
            let mut corpus = TfIdfCorpus::new();
            for bag in cat_bags.values() {
                corpus.add_document(bag);
            }
            for bag in merchant_attrs.values() {
                corpus.add_document(bag);
            }
            for ao in sorted_aos {
                let mut candidates: Vec<ScoredCandidate> = Vec::new();
                for ap in schema.iter() {
                    let ap_norm = ap.normalized_name();
                    let name_score = 0.5 * levenshtein_similarity(&ap_norm, ao)
                        + 0.5 * trigram_dice(&ap_norm, ao);
                    let instance_score = match cat_bags.get(&ap_norm) {
                        Some(pb) => corpus.cosine(pb, &merchant_attrs[ao]),
                        None => 0.0,
                    };
                    let score = match config.strategy {
                        ComaStrategy::Name => name_score,
                        ComaStrategy::Instance => instance_score,
                        ComaStrategy::Combined => 0.5 * (name_score + instance_score),
                    };
                    candidates.push(ScoredCandidate {
                        catalog_attribute: ap.name.clone(),
                        merchant_attribute: ao.clone(),
                        merchant,
                        category,
                        score,
                        is_name_identity: ap_norm == *ao,
                    });
                }
                let best = candidates.iter().map(|c| c.score).fold(f64::NEG_INFINITY, f64::max);
                out.extend(
                    candidates
                        .into_iter()
                        .filter(|c| c.score > 0.0 && best - c.score <= config.delta),
                );
            }
        }
        out
    }
}
