//! Baseline schema matchers used in the paper's comparison (Section 5.2,
//! Figures 6–9).
//!
//! * [`single_feature`] — score candidates with one distributional feature
//!   (JS-MC or Jaccard-MC) instead of the classifier combination (Fig. 6);
//! * [`dumas`] — DUMAS (Bilke & Naumann): SoftTFIDF similarity matrices
//!   over known duplicates, averaged, solved as bipartite matching (Fig. 8,
//!   implementation per the paper's Appendix C);
//! * [`naive_bayes`] — the LSD-style instance-based Naive Bayes matcher
//!   (Fig. 8, per Appendix C);
//! * [`coma`] — COMA++-style matcher library: name matchers (edit distance,
//!   trigram), instance matcher (TF-IDF cosine), combinations, and the δ
//!   candidate-selection knob (Figs. 8 and 9, per Do & Rahm and
//!   Engmann & Maßmann).
//!
//! Every matcher emits [`pse_synthesis::ScoredCandidate`]s so the same
//! precision-at-coverage evaluation applies uniformly.

pub mod coma;
pub mod dumas;
pub mod naive_bayes;
pub mod single_feature;

pub use coma::{ComaConfig, ComaIndex, ComaMatcher, ComaStrategy};
pub use dumas::DumasMatcher;
pub use naive_bayes::NaiveBayesMatcher;
pub use single_feature::{SingleFeature, SingleFeatureScorer};
