//! Single-feature baselines for Figure 6: rank candidates by one
//! distributional-similarity measure on the merchant+category grouping,
//! with no classifier combining the groupings.
//!
//! Besides the paper's two measures (JS divergence and Jaccard), the
//! alternative measures from Lee (COLING '99) — L1 distance and cosine —
//! are provided for the measure-choice ablation that validates the
//! paper's §3.1 selection.

use pse_core::{Catalog, HistoricalMatches, Offer};
use pse_synthesis::offline::bags::FeatureIndex;
use pse_synthesis::offline::features::{FeatureComputer, F_JACCARD_MC, F_JS_MC};
use pse_synthesis::{ScoredCandidate, SpecProvider};
use pse_text::divergence::MAX_JS;
use pse_text::sparse::{cosine_counts, l1_counts};

/// Which single feature to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingleFeature {
    /// Jensen–Shannon divergence on the merchant+category grouping,
    /// flipped into a similarity (`1 - JS / ln 2`).
    JsMc,
    /// Jaccard coefficient on the merchant+category grouping.
    JaccardMc,
    /// L1 distance on the merchant+category grouping, flipped into a
    /// similarity (`1 - L1 / 2`); Lee '99 alternative.
    L1Mc,
    /// Cosine similarity of the probability vectors on the
    /// merchant+category grouping; Lee '99 alternative.
    CosineMc,
}

/// The scorer.
#[derive(Debug, Clone, Copy)]
pub struct SingleFeatureScorer {
    feature: SingleFeature,
}

impl SingleFeatureScorer {
    /// A scorer for the given feature.
    pub fn new(feature: SingleFeature) -> Self {
        Self { feature }
    }

    /// Score all candidate tuples from historical matches, exactly like the
    /// classifier path but with a single-feature score.
    pub fn score_candidates<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> Vec<ScoredCandidate> {
        let index = FeatureIndex::build_matched(catalog, offers, historical, provider);
        self.score_from_index(catalog, &index)
    }

    /// Score candidates over a pre-built index.
    pub fn score_from_index(
        &self,
        catalog: &Catalog,
        index: &FeatureIndex,
    ) -> Vec<ScoredCandidate> {
        let mut computer = FeatureComputer::new(catalog, index);
        let mut out = Vec::new();
        for (merchant, category) in index.merchant_category_groups() {
            let schema = catalog.taxonomy().schema(category);
            let attrs: Vec<String> = index
                .merchant_attributes(merchant, category)
                .into_iter()
                .map(String::from)
                .collect();
            // Product bags for the Lee-alternative measures, built once per
            // (merchant, category) group.
            let mc_products = index.products_mc.get(&(merchant, category));
            for ap in schema.iter() {
                let ap_norm = ap.normalized_name();
                let alt_product_bag = match self.feature {
                    SingleFeature::L1Mc | SingleFeature::CosineMc => {
                        mc_products.map(|set| index.product_counts(set, &ap.name))
                    }
                    _ => None,
                };
                for ao in &attrs {
                    let score = match self.feature {
                        SingleFeature::JsMc => {
                            let f = computer.features(merchant, category, &ap.name, ao);
                            1.0 - (f[F_JS_MC] / MAX_JS).clamp(0.0, 1.0)
                        }
                        SingleFeature::JaccardMc => {
                            let f = computer.features(merchant, category, &ap.name, ao);
                            f[F_JACCARD_MC]
                        }
                        SingleFeature::L1Mc | SingleFeature::CosineMc => {
                            let offer_bag = index
                                .offer_mc
                                .get(&(merchant, category))
                                .and_then(|m| m.get(ao.as_str()));
                            match (offer_bag, &alt_product_bag) {
                                (Some(ob), Some(pb)) => match self.feature {
                                    SingleFeature::L1Mc => {
                                        1.0 - (l1_counts(pb, ob) / 2.0).clamp(0.0, 1.0)
                                    }
                                    _ => cosine_counts(pb, ob),
                                },
                                _ => 0.0,
                            }
                        }
                    };
                    out.push(ScoredCandidate {
                        catalog_attribute: ap.name.clone(),
                        merchant_attribute: ao.clone(),
                        merchant,
                        category,
                        score,
                        is_name_identity: *ao == ap_norm,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{
        AttributeDef, AttributeKind, CategorySchema, MerchantId, OfferId, Spec, Taxonomy,
    };
    use pse_synthesis::FnProvider;

    fn scenario() -> (Catalog, Vec<Offer>, HistoricalMatches) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Speed", AttributeKind::Numeric),
                AttributeDef::new("Interface", AttributeKind::Text),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let mut offers = Vec::new();
        let mut hist = HistoricalMatches::new();
        for (i, (speed, iface)) in
            [("5400", "ATA"), ("7200", "IDE"), ("5400", "IDE"), ("7200", "SCSI")].iter().enumerate()
        {
            let pid = catalog.add_product(
                cat,
                format!("p{i}"),
                Spec::from_pairs([("Speed", *speed), ("Interface", *iface)]),
            );
            let oid = OfferId(i as u64);
            offers.push(Offer {
                id: oid,
                merchant: MerchantId(0),
                price_cents: 1,
                image_url: None,
                category: Some(cat),
                url: String::new(),
                title: String::new(),
                spec: Spec::from_pairs([("RPM", *speed), ("Int Type", *iface)]),
            });
            hist.insert(oid, pid);
        }
        (catalog, offers, hist)
    }

    #[test]
    fn js_mc_ranks_true_pairs_first() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = SingleFeatureScorer::new(SingleFeature::JsMc)
            .score_candidates(&catalog, &offers, &hist, &provider);
        assert_eq!(scored.len(), 4, "2 catalog × 2 merchant attrs");
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .unwrap()
                .score
        };
        assert!(get("Speed", "rpm") > get("Speed", "int type"));
        assert!(get("Interface", "int type") > get("Interface", "rpm"));
        assert!((get("Speed", "rpm") - 1.0).abs() < 1e-9, "identical distributions");
    }

    #[test]
    fn lee_alternative_measures_rank_true_pairs_first() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        for feature in [SingleFeature::L1Mc, SingleFeature::CosineMc] {
            let scored = SingleFeatureScorer::new(feature)
                .score_candidates(&catalog, &offers, &hist, &provider);
            assert_eq!(scored.len(), 4);
            let get = |ap: &str, ao: &str| {
                scored
                    .iter()
                    .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                    .unwrap()
                    .score
            };
            assert!(
                get("Speed", "rpm") > get("Speed", "int type"),
                "{feature:?}: {} vs {}",
                get("Speed", "rpm"),
                get("Speed", "int type")
            );
            for c in &scored {
                assert!((0.0..=1.0).contains(&c.score), "{feature:?} score {}", c.score);
            }
        }
    }

    #[test]
    fn jaccard_mc_agrees_on_this_scenario() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let scored = SingleFeatureScorer::new(SingleFeature::JaccardMc)
            .score_candidates(&catalog, &offers, &hist, &provider);
        let get = |ap: &str, ao: &str| {
            scored
                .iter()
                .find(|c| c.catalog_attribute == ap && c.merchant_attribute == ao)
                .unwrap()
                .score
        };
        assert!(get("Speed", "rpm") > get("Speed", "int type"));
        assert!((get("Interface", "int type") - 1.0).abs() < 1e-9);
    }
}
