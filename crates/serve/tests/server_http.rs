//! End-to-end exercises of the HTTP layer (ISSUE 5 tentpole, layer 2):
//! lifecycle, every endpoint, robustness (400/404/413, raw-socket
//! garbage), deliberate backpressure 503, and graceful shutdown with
//! snapshot flush.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_store::ProductStore;
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, SpecProvider};

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
}

/// Like the equivalence fixture, but with specs materialized INTO the
/// offers, because the HTTP ingest path serializes offers as JSON and the
/// server's provider reads `offer.spec`.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let specs: HashMap<u64, Spec> =
            world.offers.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: specs[&o.id.0].clone(), ..o.clone() })
            .collect();
        Fixture { world, correspondences: offline.correspondences, corpus }
    })
}

fn spec_provider() -> FnProvider<impl Fn(&Offer) -> Spec + Sync> {
    FnProvider(|o: &Offer| o.spec.clone())
}

fn addr_of(handle: &pse_serve::ServerHandle) -> String {
    handle.addr().to_string()
}

#[test]
fn endpoints_end_to_end() {
    let f = fixture();
    let (first_half, second_half) = f.corpus.split_at(f.corpus.len() / 2);
    let store = ShardedStore::new(f.correspondences.clone(), 4);
    store.ingest(&f.world.catalog, first_half, &spec_provider());
    let handle = pse_serve::start(store, f.world.catalog.clone(), ServerConfig::default())
        .expect("server starts");
    let addr = addr_of(&handle);

    let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, _) = http_request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);

    // Ingest the second half over HTTP; the response is IngestStats.
    let batch = serde_json::to_string(&second_half.to_vec()).unwrap();
    let (status, stats) = http_request(&addr, "POST", "/ingest", Some(&batch)).unwrap();
    assert_eq!(status, 200, "ingest failed: {stats}");
    assert!(stats.contains("offers_routed"));

    // The served store must now equal one sequential store over the
    // whole corpus.
    let mut reference = ProductStore::new(f.correspondences.clone());
    reference.ingest(&f.world.catalog, &f.corpus, &spec_provider());
    let expected = reference.products();
    assert_eq!(
        serde_json::to_string(&handle.store().products()).unwrap(),
        serde_json::to_string(&expected).unwrap()
    );

    // Category listing equals the store's own per-category view.
    let category = expected[0].category;
    let (status, listed) =
        http_request(&addr, "GET", &format!("/products/{}", category.0), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        listed,
        serde_json::to_string(&handle.store().products_in_category(category)).unwrap()
    );

    // Point lookup of a known product.
    let p = &expected[0];
    let path =
        format!("/product?category={}&attr={}&key={}", p.category.0, p.key_attribute, p.key_value);
    let (status, got) = http_request(&addr, "GET", &path, None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(got, serde_json::to_string(p).unwrap());

    // Retract that product's offers over HTTP; the lookup 404s after.
    let ids: Vec<u64> = p.offers.iter().map(|o| o.0).collect();
    let (status, _) =
        http_request(&addr, "POST", "/retract", Some(&serde_json::to_string(&ids).unwrap()))
            .unwrap();
    assert_eq!(status, 200);
    let (status, _) = http_request(&addr, "GET", &path, None).unwrap();
    assert_eq!(status, 404);

    // Robustness: 404s, 400s, and 405s, never a dead worker.
    assert_eq!(http_request(&addr, "GET", "/nope", None).unwrap().0, 404);
    assert_eq!(http_request(&addr, "GET", "/products/banana", None).unwrap().0, 400);
    assert_eq!(http_request(&addr, "GET", "/product?category=1", None).unwrap().0, 400);
    assert_eq!(http_request(&addr, "POST", "/ingest", Some("not json")).unwrap().0, 400);
    assert_eq!(http_request(&addr, "PUT", "/healthz", None).unwrap().0, 405);

    // Raw-socket garbage gets a 400, not a hung or panicked worker.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    drop(raw);

    // The server still answers afterwards.
    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);

    handle.shutdown().expect("clean shutdown");
}

#[test]
fn request_size_cap_gives_413() {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 2);
    let config = ServerConfig { max_request_bytes: 512, ..ServerConfig::default() };
    let handle = pse_serve::start(store, f.world.catalog.clone(), config).unwrap();
    let addr = addr_of(&handle);
    let big = "x".repeat(2048);
    let (status, _) = http_request(&addr, "POST", "/ingest", Some(&big)).unwrap();
    assert_eq!(status, 413);
    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}

/// The documented cap is 1 MiB, and it is a strict boundary: a request
/// totaling exactly `max_request_bytes` is served, one byte more is 413
/// (ISSUE 6 satellite — `ServerConfig::default` used to say 4 MiB while
/// every doc said 1 MiB).
#[test]
fn request_size_cap_boundary_is_exactly_one_mib() {
    const CAP: usize = 1 << 20;
    assert_eq!(ServerConfig::default().max_request_bytes, CAP, "default cap is 1 MiB");

    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 2);
    let handle = pse_serve::start(store, f.world.catalog.clone(), ServerConfig::default()).unwrap();
    let addr = addr_of(&handle);

    let header = |content_length: usize| {
        format!("POST /ingest HTTP/1.1\r\nContent-Length: {content_length}\r\n\r\n")
    };
    // Solve for the body size that makes header + body total exactly CAP
    // (the header length depends on the digits of Content-Length).
    let mut body_len = CAP;
    for _ in 0..4 {
        body_len = CAP - header(body_len).len();
    }
    let exact = header(body_len);
    assert_eq!(exact.len() + body_len, CAP);

    // Exactly at the cap: read fully and dispatched (400: not JSON), not 413.
    let status = raw_roundtrip(&addr, &exact, &vec![b'x'; body_len]);
    assert_eq!(status, 400, "a request of exactly the cap must be served");

    // One byte over: rejected with 413 straight from the header.
    let status = raw_roundtrip(&addr, &header(body_len + 1), b"");
    assert_eq!(status, 413, "one byte past the cap must be 413");

    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}

/// Write a raw request and return the response status code.
fn raw_roundtrip(addr: &str, header: &str, body: &[u8]) -> u16 {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(header.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    text.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("response has a status line")
}

/// RFC 7230 §3.3.2 at the socket level (ISSUE 8 satellite): duplicate
/// `Content-Length` headers carrying the same value are fine;
/// conflicting or empty values are 400, never last-wins (the old parser
/// read the body with the last duplicate's length — a request-smuggling
/// shape).
#[test]
fn duplicate_content_length_over_the_wire() {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 1);
    let handle = pse_serve::start(store, f.world.catalog.clone(), ServerConfig::default()).unwrap();
    let addr = addr_of(&handle);

    // Same value twice: the request is read and dispatched (an empty
    // ingest batch is a 200).
    let status = raw_roundtrip(
        &addr,
        "POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n",
        b"[]",
    );
    assert_eq!(status, 200, "duplicate-same Content-Length must be accepted");

    // Conflicting values: 400 regardless of order or casing.
    let status = raw_roundtrip(
        &addr,
        "POST /ingest HTTP/1.1\r\nContent-Length: 2\r\ncontent-length: 3\r\n\r\n",
        b"[]x",
    );
    assert_eq!(status, 400, "conflicting Content-Length must be rejected");
    let status = raw_roundtrip(
        &addr,
        "POST /ingest HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 2\r\n\r\n",
        b"[]x",
    );
    assert_eq!(status, 400, "larger-first conflict must not win either");

    // Empty value: 400.
    let status = raw_roundtrip(&addr, "POST /ingest HTTP/1.1\r\nContent-Length:\r\n\r\n", b"");
    assert_eq!(status, 400, "empty Content-Length must be rejected");

    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}

#[test]
fn overload_gets_backpressure_503() {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 1);
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    };
    let handle = pse_serve::start(store, f.world.catalog.clone(), config).unwrap();
    let addr = addr_of(&handle);

    // Occupy the only worker and the whole queue with connections that
    // send nothing; the next connection must be rejected with 503. The
    // stalls are staggered so the worker dequeues the first before the
    // second lands in the queue slot.
    let stall_a = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let stall_b = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let (status, _) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 503, "queue full must answer 503, not hang");

    // Releasing the stalled connections restores service.
    drop(stall_a);
    drop(stall_b);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_flushes_snapshot_and_http_shutdown_stops() {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 4);
    store.ingest(&f.world.catalog, &f.corpus, &spec_provider());
    let expected_snapshot = store.snapshot_json();
    let snapshot_path =
        std::env::temp_dir().join(format!("pse_serve_test_{}.snapshot.json", std::process::id()));
    let config = ServerConfig { snapshot_path: Some(snapshot_path.clone()), ..Default::default() };
    let handle = pse_serve::start(store, f.world.catalog.clone(), config).unwrap();
    let addr = addr_of(&handle);

    let (status, _) = http_request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.wait_for_stop();
    let store = handle.shutdown().expect("clean shutdown");

    let flushed = std::fs::read_to_string(&snapshot_path).expect("snapshot flushed");
    assert_eq!(flushed, expected_snapshot, "flush must be the merged single-store snapshot");
    // The flush is stage-and-rename (ISSUE 8 satellite): no staging
    // remnant may survive a successful shutdown.
    assert!(
        !pse_wal::tmp_sibling(&snapshot_path).exists(),
        "no .tmp staging file may remain after shutdown"
    );
    // And it restores into a working sharded store.
    let restored = ShardedStore::restore_json(&flushed, 2).unwrap();
    assert_eq!(
        serde_json::to_string(&restored.products()).unwrap(),
        serde_json::to_string(&store.products()).unwrap()
    );
    let _ = std::fs::remove_file(&snapshot_path);

    // The port actually closed.
    assert!(http_request(&addr, "GET", "/healthz", None).is_err());
}
