//! Property tests for the typed router and the shared query parser
//! (ISSUE 10 satellite): over the server's endpoint set and arbitrary
//! methods × paths, `Router::find` agrees with a transliteration of the
//! legacy `match (method, path)` dispatch — with its two `starts_with`
//! fallthrough bugs fixed — and percent-encoded query strings round-trip
//! through `parse_query` byte-for-byte.

use proptest::prelude::*;

use pse_serve::http::parse_query;
use pse_serve::router::EndpointMetrics;
use pse_serve::{Method, Route, RouteOutcome, Router, Seg};

const M: EndpointMetrics = EndpointMetrics { requests: "r", errors: "e", us: "u" };

/// The server's route table with handlers replaced by row indexes —
/// same shape as `server.rs`'s `ROUTES`, which is private by design
/// (the socket tests in `error_envelope.rs` pin the real table's
/// behavior; this table pins the matching engine on the same patterns).
static TABLE: &[Route<usize>] = &[
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("healthz")],
        label: "healthz",
        metrics: M,
        handler: 0,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("metrics")],
        label: "metrics",
        metrics: M,
        handler: 1,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("product")],
        label: "product",
        metrics: M,
        handler: 2,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("products"), Seg::Param("category")],
        label: "products",
        metrics: M,
        handler: 3,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("search")],
        label: "search",
        metrics: M,
        handler: 4,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("debug"), Seg::Lit("requests")],
        label: "debug_requests",
        metrics: M,
        handler: 5,
    },
    Route {
        method: Method::Get,
        pattern: &[Seg::Lit("debug"), Seg::Lit("trace"), Seg::Param("id")],
        label: "debug_trace",
        metrics: M,
        handler: 6,
    },
    Route {
        method: Method::Post,
        pattern: &[Seg::Lit("ingest")],
        label: "ingest",
        metrics: M,
        handler: 7,
    },
    Route {
        method: Method::Post,
        pattern: &[Seg::Lit("retract")],
        label: "retract",
        metrics: M,
        handler: 8,
    },
    Route {
        method: Method::Post,
        pattern: &[Seg::Lit("shutdown")],
        label: "shutdown",
        metrics: M,
        handler: 9,
    },
];

static ROUTER: Router<usize> = Router::new(TABLE);

/// What the router decided, flattened for comparison: the matched label
/// and captured params, or the error status.
#[derive(Debug, PartialEq)]
enum Decision {
    Handler(&'static str, Vec<(String, String)>),
    Status(u16),
}

fn router_decision(method: &str, path: &str) -> Decision {
    match ROUTER.find(method, path) {
        RouteOutcome::Matched(route, params) => {
            let captured = ["category", "id"]
                .iter()
                .filter_map(|n| params.get(n).map(|v| (n.to_string(), v.to_string())))
                .collect();
            Decision::Handler(route.label, captured)
        }
        RouteOutcome::NotFound => Decision::Status(404),
        RouteOutcome::MethodNotAllowed => Decision::Status(405),
    }
}

/// The legacy dispatch `match`, transliterated — except the two
/// `starts_with` arms now require exactly one non-empty trailing
/// segment, which is the documented fix (a trailing slash or an extra
/// `/seg` used to fall through into the handler).
fn legacy_decision(method: &str, path: &str) -> Decision {
    fn single_nonempty_segment(rest: &str) -> Option<&str> {
        (!rest.is_empty() && !rest.contains('/')).then_some(rest)
    }
    let capture = |name: &str, value: &str| vec![(name.to_string(), value.to_string())];
    match (method, path) {
        ("GET", "/healthz") => Decision::Handler("healthz", vec![]),
        ("GET", "/metrics") => Decision::Handler("metrics", vec![]),
        ("GET", "/product") => Decision::Handler("product", vec![]),
        ("GET", p) if p.starts_with("/products/") => {
            match single_nonempty_segment(&p["/products/".len()..]) {
                Some(seg) => Decision::Handler("products", capture("category", seg)),
                None => Decision::Status(404),
            }
        }
        ("GET", "/search") => Decision::Handler("search", vec![]),
        ("GET", "/debug/requests") => Decision::Handler("debug_requests", vec![]),
        ("GET", p) if p.starts_with("/debug/trace/") => {
            match single_nonempty_segment(&p["/debug/trace/".len()..]) {
                Some(seg) => Decision::Handler("debug_trace", capture("id", seg)),
                None => Decision::Status(404),
            }
        }
        ("POST", "/ingest") => Decision::Handler("ingest", vec![]),
        ("POST", "/retract") => Decision::Handler("retract", vec![]),
        ("POST", "/shutdown") => Decision::Handler("shutdown", vec![]),
        ("GET" | "POST", _) => Decision::Status(404),
        _ => Decision::Status(405),
    }
}

const METHODS: &[&str] =
    &["GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "get", "post", "", "G ET"];

/// Segment pool biased toward the table's literals so generated paths
/// collide with real routes often, plus near-misses and junk.
const SEGMENTS: &[&str] = &[
    "healthz", "metrics", "product", "products", "search", "debug", "requests", "trace", "ingest",
    "retract", "shutdown", "7", "banana", "", "Products", "..", "a b",
];

fn method_strategy() -> impl Strategy<Value = String> {
    (0..METHODS.len()).prop_map(|i| METHODS[i].to_string())
}

fn path_strategy() -> impl Strategy<Value = String> {
    (proptest::collection::vec(0..SEGMENTS.len(), 0..4), any::<bool>()).prop_map(
        |(indexes, leading_slash)| {
            let joined = indexes.iter().map(|&i| SEGMENTS[i]).collect::<Vec<_>>().join("/");
            if leading_slash {
                format!("/{joined}")
            } else {
                joined
            }
        },
    )
}

proptest! {
    /// The router and the (fixed) legacy match agree on every
    /// method × path, including captures.
    #[test]
    fn router_agrees_with_legacy_dispatch(
        method in method_strategy(),
        path in path_strategy(),
    ) {
        let got = router_decision(&method, &path);
        let want = legacy_decision(&method, &path);
        prop_assert_eq!(got, want, "method={:?} path={:?}", &method, &path);
    }
}

/// Percent-encode every byte that is not unreserved, which is always a
/// valid (if conservative) encoding of the pair.
fn encode(s: &str) -> String {
    let mut out = String::new();
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Arbitrary bytes laundered through from_utf8_lossy: covers ASCII,
    // multi-byte UTF-8 (replacement chars), and the reserved characters
    // `& = % +` that the encoder must protect.
    proptest::collection::vec(any::<u8>(), 0..12)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    /// Arbitrary pairs survive encode → wire → parse_query unchanged,
    /// in order, duplicates and empty values included.
    #[test]
    fn query_pairs_round_trip(
        pairs in proptest::collection::vec((text_strategy(), text_strategy()), 0..6),
    ) {
        let wire = pairs
            .iter()
            .map(|(k, v)| format!("{}={}", encode(k), encode(v)))
            .collect::<Vec<_>>()
            .join("&");
        // Every encoded pair is "k=v" (never an empty part — even an
        // empty pair encodes to "="), so parse_query keeps them all.
        let decoded = parse_query(&wire);
        prop_assert_eq!(decoded, pairs, "wire={:?}", &wire);
    }
}

/// The hand-written corner cases the fuzz loop cannot pin byte-exactly:
/// `+` means space, stray `%` stays verbatim, bare keys get empty
/// values, and empty parts vanish.
#[test]
fn query_parser_corner_cases() {
    assert_eq!(parse_query("a=1+2"), vec![("a".into(), "1 2".into())]);
    assert_eq!(parse_query("a%20b=c%26d"), vec![("a b".into(), "c&d".into())]);
    assert_eq!(parse_query("a=%ZZ"), vec![("a".into(), "%ZZ".into())]);
    assert_eq!(parse_query("flag"), vec![("flag".into(), String::new())]);
    assert_eq!(parse_query("&&a=1&&"), vec![("a".into(), "1".into())]);
    assert_eq!(parse_query(""), Vec::<(String, String)>::new());
    assert_eq!(
        parse_query("q=canon&q=nikon"),
        vec![("q".into(), "canon".into()), ("q".into(), "nikon".into())]
    );
}
