//! Reader storm through the response cache (ISSUE 6 satellite): N client
//! threads hammer `GET /products/{category}` over HTTP while a writer
//! churns ingest/retract cycles in a *disjoint* category. Every response
//! must byte-equal a fresh serialization of the stable category, and the
//! `serve.cache.*` counters must reconcile exactly:
//! `hits + misses == products requests served`.
//!
//! This lives in its own integration-test binary because it asserts on
//! process-global `pse_obs` counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use pse_core::{Offer, OfferId, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::runtime::{reconcile_batch, KeyAttributes};
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, RuntimeConfig, SpecProvider};

const N_SHARDS: usize = 4;
const READERS: usize = 4;
const REQUESTS_PER_READER: usize = 120;
/// A category id no tiny world ever generates: every request for it is a
/// deliberate cache miss answered with the shared `[]` body.
const ABSENT_CATEGORY: u32 = 4_242_424;

#[test]
fn reader_storm_sees_consistent_bytes_and_counters_reconcile() {
    pse_obs::set_enabled(true);

    let world = World::generate(WorldConfig::tiny());
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let corpus: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let specs: HashMap<u64, Spec> = corpus.iter().map(|o| (o.id.0, provider.spec(o))).collect();
    let provider = FnProvider(move |o: &Offer| specs[&o.id.0].clone());

    // Partition the corpus by the category its offers route to, and pick
    // the two most-populated categories: the biggest stays stable and is
    // what the readers hammer; the runner-up is what the writer churns.
    let config = RuntimeConfig::default();
    let keys = KeyAttributes::new(&config.key_attributes);
    let reconciled = reconcile_batch(&corpus, &offline.correspondences, &provider);
    let mut category_of_offer: HashMap<u64, u32> = HashMap::new();
    for r in &reconciled {
        if keys.route(r).is_some() {
            category_of_offer.insert(r.offer.0, r.category.0);
        }
    }
    let mut by_category: HashMap<u32, Vec<Offer>> = HashMap::new();
    for offer in &corpus {
        if let Some(&cat) = category_of_offer.get(&offer.id.0) {
            by_category.entry(cat).or_default().push(offer.clone());
        }
    }
    let mut sized: Vec<(u32, Vec<Offer>)> = by_category.into_iter().collect();
    sized.sort_by_key(|(cat, offers)| (std::cmp::Reverse(offers.len()), *cat));
    assert!(sized.len() >= 2, "tiny world must populate at least two categories");
    let (stable_category, stable_batch) = sized[0].clone();
    let (churn_category, churn_batch) = sized[1].clone();
    assert_ne!(stable_category, churn_category);
    let churn_ids: Vec<OfferId> = churn_batch.iter().map(|o| o.id).collect();

    let store = ShardedStore::new(offline.correspondences.clone(), N_SHARDS);
    store.ingest(&world.catalog, &stable_batch, &provider);
    let expected =
        serde_json::to_string(&store.products_in_category(pse_core::CategoryId(stable_category)))
            .expect("products serialize");
    assert_ne!(expected, "[]", "the stable category must actually serve products");

    // Generous queue/workers: this test is about consistency, not 503s.
    let config = ServerConfig { workers: 4, queue_depth: 256, ..ServerConfig::default() };
    let handle = pse_serve::start(store, world.catalog.clone(), config).expect("server starts");
    let addr = handle.addr().to_string();
    let store = handle.store();

    let before = pse_obs::report();
    let hits_before = before.counter("serve.cache.hit").unwrap_or(0);
    let misses_before = before.counter("serve.cache.miss").unwrap_or(0);

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut cycles = 0u32;
            while !done.load(Ordering::Relaxed) {
                store.ingest(&world.catalog, &churn_batch, &provider);
                store.retract(&world.catalog, &churn_ids);
                cycles += 1;
            }
            cycles
        });
        let readers: Vec<_> = (0..READERS)
            .map(|reader| {
                let addr = &addr;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..REQUESTS_PER_READER {
                        // Every 8th request probes the absent category: a
                        // deliberate miss served from the shared `[]` body.
                        let (category, want) = if (i + reader) % 8 == 0 {
                            (ABSENT_CATEGORY, "[]")
                        } else {
                            (stable_category, expected.as_str())
                        };
                        let (status, body) =
                            http_request(addr, "GET", &format!("/products/{category}"), None)
                                .expect("request succeeds");
                        assert_eq!(status, 200);
                        assert_eq!(
                            body, want,
                            "reader {reader} request {i}: category {category} must byte-equal \
                             a fresh serialization, independent of the concurrent churn"
                        );
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().expect("reader thread joins");
        }
        done.store(true, Ordering::Relaxed);
        let cycles = writer.join().expect("writer thread joins");
        assert!(cycles >= 2, "the writer must actually churn during the storm ({cycles} cycles)");
    });

    // Exactly one hit-or-miss per `GET /products/{category}` request.
    let after = pse_obs::report();
    let hits = after.counter("serve.cache.hit").expect("hit counter seeded") - hits_before;
    let misses = after.counter("serve.cache.miss").expect("miss counter seeded") - misses_before;
    let requests = (READERS * REQUESTS_PER_READER) as u64;
    assert_eq!(
        hits + misses,
        requests,
        "cache counters must reconcile: {hits} hits + {misses} misses != {requests} requests"
    );
    assert!(hits > 0, "the stable category must be served from the cache");
    assert!(misses > 0, "the absent category must count as misses");
    assert!(
        after.counter("serve.cache.invalidated").expect("invalidated counter seeded") > 0,
        "the churn must invalidate its category's cached response"
    );

    handle.shutdown().expect("clean shutdown");
}
