//! Request tracing over real sockets: the `/debug/*` endpoints, trace-id
//! adoption from `X-Pse-Trace-Id`, and the tracing half of the
//! determinism contract (observability on vs off is byte-identical on
//! product endpoints).
//!
//! Lives in its own integration-test binary because every test toggles
//! the process-global observability flag; they serialize on a local lock
//! so cargo's parallel harness cannot interleave them.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::{World, WorldConfig};
use pse_obs::{DebugRequests, RecorderConfig, RequestTrace, TraceId};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, SpecProvider};
use serde::Deserialize;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn obs_session() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pse_obs::reset();
    pse_obs::set_enabled(true);
    guard
}

fn end_session() {
    pse_obs::set_enabled(false);
    pse_obs::reset();
}

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
}

/// Same shape as the `server_http` fixture: specs materialized INTO the
/// offers so the server's `FnProvider` reads `offer.spec`.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let specs: HashMap<u64, Spec> =
            world.offers.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: specs[&o.id.0].clone(), ..o.clone() })
            .collect();
        Fixture { world, correspondences: offline.correspondences, corpus }
    })
}

fn spec_provider() -> FnProvider<impl Fn(&Offer) -> Spec + Sync> {
    FnProvider(|o: &Offer| o.spec.clone())
}

fn started_server(f: &Fixture, recorder: RecorderConfig) -> (pse_serve::ServerHandle, String) {
    let store = ShardedStore::new(f.correspondences.clone(), 2);
    store.ingest(&f.world.catalog, &f.corpus, &spec_provider());
    let config = ServerConfig { recorder, ..ServerConfig::default() };
    let handle = pse_serve::start(store, f.world.catalog.clone(), config).expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// The acceptance-criterion test: after driving traffic, `/debug/requests`
/// returns the slowest in-window request with a span tree whose per-stage
/// (same-depth) durations sum to at most the request total; known ids
/// resolve via `/debug/trace/{id}`, unknown ids 404, bad ids 400.
#[test]
fn debug_endpoints_expose_slowest_span_trees() {
    let _g = obs_session();
    let f = fixture();
    // Threshold 0: every request is "slow", so the slow set sees all four
    // and the sortedness/eviction logic is exercised end to end.
    let (handle, addr) = started_server(
        f,
        RecorderConfig { recent_capacity: 16, slow_capacity: 8, slow_threshold_ns: 0 },
    );

    let p = &handle.store().products()[0];
    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    assert_eq!(
        http_request(&addr, "GET", &format!("/products/{}", p.category.0), None).unwrap().0,
        200
    );
    let lookup =
        format!("/product?category={}&attr={}&key={}", p.category.0, p.key_attribute, p.key_value);
    assert_eq!(http_request(&addr, "GET", &lookup, None).unwrap().0, 200);
    assert_eq!(http_request(&addr, "GET", "/nope", None).unwrap().0, 404);

    let (status, body) = http_request(&addr, "GET", "/debug/requests", None).unwrap();
    assert_eq!(status, 200);
    let dbg = DebugRequests::from_value(&serde_json::from_str(&body).expect("valid JSON")).unwrap();
    assert_eq!(dbg.recorded, 4, "one trace per handled request");
    assert_eq!(dbg.rotated_out, 0);
    assert_eq!(dbg.recent.len(), 4);
    assert_eq!(dbg.slowest.len(), 4, "threshold 0 admits everything");
    let labels: Vec<&str> = dbg.recent.iter().map(|t| t.endpoint.as_str()).collect();
    assert_eq!(labels, ["other", "product", "products", "healthz"], "most recent first");

    // The slow set is sorted slowest-first and its head is the in-window
    // maximum.
    let max_total = dbg.slowest.iter().map(|t| t.total_ns).max().unwrap();
    assert_eq!(dbg.slowest[0].total_ns, max_total);
    assert!(dbg.slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));

    // Every slow entry carries a span tree; all GET traffic here is
    // single-threaded, so same-depth spans are disjoint intervals and
    // their durations sum to at most the request total.
    for t in &dbg.slowest {
        assert!(!t.spans.is_empty(), "slow entries carry full span trees");
        assert!(t.spans.iter().all(|s| s.path.starts_with("serve.request")));
        assert!(t.spans.iter().any(|s| s.path == "serve.request.parse"));
        assert!(t.spans.iter().any(|s| s.path == "serve.request.write"));
        let depths: Vec<u64> = t.spans.iter().map(|s| s.depth).collect();
        for depth in depths {
            let stage_sum: u64 =
                t.spans.iter().filter(|s| s.depth == depth).map(|s| s.dur_ns).sum();
            assert!(
                stage_sum <= t.total_ns,
                "depth-{depth} stages of {} sum to {stage_sum}ns > total {}ns",
                t.endpoint,
                t.total_ns
            );
        }
    }
    // The products trace descends into the cache probe.
    let products = dbg.slowest.iter().find(|t| t.endpoint == "products").unwrap();
    assert!(products.spans.iter().any(|s| s.path == "serve.request.products.cache_probe"));

    // A recent id resolves to the full trace; unknown 404s; bad hex 400s.
    let id = dbg.recent[0].id;
    let (status, body) =
        http_request(&addr, "GET", &format!("/debug/trace/{}", id.to_hex()), None).unwrap();
    assert_eq!(status, 200);
    let full = RequestTrace::from_value(&serde_json::from_str(&body).unwrap()).unwrap();
    assert_eq!(full.id, id);
    assert_eq!(full.endpoint, "other");
    let miss = TraceId(!dbg.recent.iter().fold(0, |acc, t| acc | t.id.0));
    let path = format!("/debug/trace/{}", miss.to_hex());
    if dbg.recent.iter().all(|t| t.id != miss) {
        assert_eq!(http_request(&addr, "GET", &path, None).unwrap().0, 404);
    }
    assert_eq!(http_request(&addr, "GET", "/debug/trace/not-hex", None).unwrap().0, 400);
    assert_eq!(http_request(&addr, "GET", "/debug/trace/00112233445566778", None).unwrap().0, 400);

    handle.shutdown().unwrap();
    end_session();
}

/// A client-supplied `X-Pse-Trace-Id` (any casing) becomes the request's
/// identity, resolvable at `/debug/trace/{id}` afterwards.
#[test]
fn trace_header_id_is_adopted() {
    let _g = obs_session();
    let f = fixture();
    let (handle, addr) = started_server(
        f,
        RecorderConfig { recent_capacity: 16, slow_capacity: 4, slow_threshold_ns: u64::MAX },
    );

    // `http_request` sends no custom headers, so write the raw bytes.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\nx-PSE-Trace-ID: DEADbeef00000001\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    assert!(reply.starts_with(b"HTTP/1.1 200"), "healthz served with the header present");
    drop(stream);

    let (status, body) = http_request(&addr, "GET", "/debug/trace/deadbeef00000001", None).unwrap();
    assert_eq!(status, 200, "client-supplied id is the trace identity");
    let full = RequestTrace::from_value(&serde_json::from_str(&body).unwrap()).unwrap();
    assert_eq!(full.id, TraceId(0xdead_beef_0000_0001));
    assert_eq!((full.endpoint.as_str(), full.status), ("healthz", 200));

    // And an error under an adopted id carries that id in its envelope,
    // so the trace behind any failure is one `/debug/trace/{id}` away.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /nope HTTP/1.1\r\nX-Pse-Trace-Id: deadbeef00000002\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 404"), "unknown path is 404: {text}");
    assert!(
        text.contains("\"trace_id\":\"deadbeef00000002\""),
        "error envelope carries the adopted trace id: {text}"
    );

    handle.shutdown().unwrap();
    end_session();
}

/// The tracing half of the determinism contract, pinned over real
/// sockets: turning observability (tracing + endpoint histograms + the
/// flight recorder) on changes no response byte on product endpoints.
/// The one sanctioned exception is the error envelope's `trace_id`
/// field, which exists precisely to surface the trace — it is
/// normalized out before comparing.
fn blank_trace_id(body: &str) -> String {
    match body.find("\"trace_id\":\"") {
        None => body.to_string(),
        Some(start) => {
            let value_start = start + "\"trace_id\":\"".len();
            let value_end = value_start + body[value_start..].find('"').unwrap();
            format!("{}{}", &body[..value_start], &body[value_end..])
        }
    }
}

#[test]
fn tracing_does_not_change_product_bytes() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pse_obs::set_enabled(false);
    pse_obs::reset();
    let f = fixture();
    let (handle, addr) = started_server(f, RecorderConfig::default());
    let p = &handle.store().products()[0];
    let paths = [
        "/healthz".to_string(),
        format!("/products/{}", p.category.0),
        format!("/products/{}", u32::MAX), // empty category
        "/products/banana".to_string(),    // 400
        format!("/product?category={}&attr={}&key={}", p.category.0, p.key_attribute, p.key_value),
        "/product?category=1".to_string(), // 400
        "/nope".to_string(),               // 404
    ];

    let fetch = |path: &String| {
        let (status, body) = http_request(&addr, "GET", path, None).unwrap();
        (status, blank_trace_id(&body))
    };
    let off: Vec<(u16, String)> = paths.iter().map(fetch).collect();
    pse_obs::set_enabled(true);
    let on: Vec<(u16, String)> = paths.iter().map(fetch).collect();
    end_session();

    for ((path, off), on) in paths.iter().zip(&off).zip(&on) {
        assert_eq!(off, on, "observability changed the response for {path}");
    }
    handle.shutdown().unwrap();
}
