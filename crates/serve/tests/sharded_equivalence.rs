//! ShardedStore ≡ ProductStore (ISSUE 5 tentpole, layer 1): at 1, 2, 4,
//! and 8 shards, for arbitrary ingest/retract interleavings, the sharded
//! store's products and snapshot are byte-identical to a single
//! `ProductStore` fed the same operation stream — and snapshots written
//! at one shard count restore at any other.

use std::collections::HashMap;
use std::sync::OnceLock;

use proptest::prelude::*;
use pse_core::{CorrespondenceSet, Offer, OfferId, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{shard_of, ShardedStore};
use pse_store::ProductStore;
use pse_synthesis::runtime::{reconcile_batch, KeyAttributes};
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, RuntimeConfig, SpecProvider};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
    specs: HashMap<u64, Spec>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .cloned()
            .collect();
        assert!(corpus.len() >= 20, "tiny world must leave a usable unmatched corpus");
        let specs = corpus.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        Fixture { world, correspondences: offline.correspondences, corpus, specs }
    })
}

fn provider(f: &Fixture) -> FnProvider<impl Fn(&Offer) -> Spec + Sync + '_> {
    FnProvider(move |o: &Offer| f.specs[&o.id.0].clone())
}

fn products_json(products: &[pse_synthesis::SynthesizedProduct]) -> String {
    serde_json::to_string_pretty(&products.to_vec()).expect("products serialize")
}

/// One interleaved operation stream: ingest the batch, then retract the
/// listed already-ingested offers.
struct Step {
    batch: std::ops::Range<usize>,
    retract: Vec<OfferId>,
}

/// Turn proptest's raw integers into a concrete interleaving: `raw_cuts`
/// partition the corpus into ingest batches; after batch `i`,
/// `raw_retracts[i]` (mod ingested-so-far) offers get retracted, picked
/// deterministically across everything ingested up to that point
/// (including some already-retracted ids — retracting twice must be a
/// no-op on both sides).
fn steps(f: &Fixture, raw_cuts: Vec<usize>, raw_retracts: Vec<usize>) -> Vec<Step> {
    let n = f.corpus.len();
    let mut cuts: Vec<usize> = raw_cuts.into_iter().map(|c| c % (n + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts.push(n);
    let mut out = Vec::new();
    let mut start = 0;
    for (i, cut) in cuts.into_iter().enumerate() {
        let ingested = &f.corpus[..cut];
        let want = raw_retracts.get(i).copied().unwrap_or(0) % (ingested.len() + 1);
        let retract: Vec<OfferId> =
            (0..want).map(|j| ingested[(j * 7 + i * 3) % ingested.len()].id).collect();
        out.push(Step { batch: start..cut, retract });
        start = cut;
    }
    out
}

fn run_reference(f: &Fixture, steps: &[Step]) -> ProductStore {
    let mut store = ProductStore::new(f.correspondences.clone());
    for step in steps {
        store.ingest(&f.world.catalog, &f.corpus[step.batch.clone()], &provider(f));
        store.retract(&f.world.catalog, &step.retract);
    }
    store
}

fn run_sharded(f: &Fixture, steps: &[Step], n_shards: usize) -> ShardedStore {
    let store = ShardedStore::new(f.correspondences.clone(), n_shards);
    for step in steps {
        store.ingest(&f.world.catalog, &f.corpus[step.batch.clone()], &provider(f));
        store.retract(&f.world.catalog, &step.retract);
    }
    store
}

proptest! {
    #[test]
    fn sharded_matches_single_store_for_arbitrary_interleavings(
        raw_cuts in prop::collection::vec(0usize..10_000, 0..4),
        raw_retracts in prop::collection::vec(0usize..7, 0..5),
    ) {
        let f = fixture();
        let steps = steps(f, raw_cuts, raw_retracts);
        let reference = run_reference(f, &steps);
        let expected_products = products_json(&reference.products());
        let expected_snapshot = reference.snapshot_json();
        // Every category the reference has ever seen, plus one absent.
        let mut categories: Vec<u32> = reference.products().iter().map(|p| p.category.0).collect();
        categories.dedup();
        categories.push(4_242_424);
        for n_shards in SHARD_COUNTS {
            let sharded = run_sharded(f, &steps, n_shards);
            prop_assert_eq!(
                &products_json(&sharded.products()),
                &expected_products,
                "products at {} shards",
                n_shards
            );
            prop_assert_eq!(
                &sharded.snapshot_json(),
                &expected_snapshot,
                "snapshot at {} shards",
                n_shards
            );
            // The cached response bodies must be byte-identical to what
            // the pre-MVCC locked path produced: a fresh serialization
            // of the category's products.
            for &cat in &categories {
                let category = pse_core::CategoryId(cat);
                let expected = serde_json::to_string(&reference.products_in_category(category))
                    .expect("products serialize");
                let body = sharded.products_response(category);
                prop_assert_eq!(
                    std::str::from_utf8(&body).expect("response is UTF-8"),
                    expected.as_str(),
                    "cached response for category {} at {} shards",
                    cat,
                    n_shards
                );
            }
        }
    }

    #[test]
    fn snapshots_restore_across_shard_counts(raw_cut in 0usize..10_000) {
        let f = fixture();
        let n = f.corpus.len();
        let cut = raw_cut % (n + 1);
        // Write the snapshot mid-stream at one shard count, restore at
        // another, finish the stream, and compare against the single
        // store that never went through a snapshot.
        let mut reference = ProductStore::new(f.correspondences.clone());
        reference.ingest(&f.world.catalog, &f.corpus, &provider(f));
        let expected = products_json(&reference.products());
        for (write_shards, read_shards) in [(1, 8), (4, 2), (8, 1), (2, 4)] {
            let first = ShardedStore::new(f.correspondences.clone(), write_shards);
            first.ingest(&f.world.catalog, &f.corpus[..cut], &provider(f));
            let restored = ShardedStore::restore_json(&first.snapshot_json(), read_shards)
                .expect("sharded snapshot restores");
            prop_assert_eq!(restored.n_shards(), read_shards);
            restored.ingest(&f.world.catalog, &f.corpus[cut..], &provider(f));
            prop_assert_eq!(
                &products_json(&restored.products()),
                &expected,
                "{} -> {} shards, cut {}",
                write_shards,
                read_shards,
                cut
            );
        }
    }
}

/// Regression guard for the torn cross-shard read (ISSUE 6): a reader
/// racing a multi-shard ingest/retract cycle must only ever observe the
/// pre-batch state or the post-batch state of a category — never a
/// partial batch where some of its clusters are visible and others are
/// not. The pre-MVCC implementation acquired shard read locks
/// sequentially, so a concurrent ingest landing between two shard reads
/// produced exactly such a torn view.
#[test]
fn concurrent_reader_never_observes_partial_batch() {
    const N_SHARDS: usize = 4;
    const CYCLES: usize = 300;
    let f = fixture();
    let config = RuntimeConfig::default();
    let keys = KeyAttributes::new(&config.key_attributes);
    let reconciled = reconcile_batch(&f.corpus, &f.correspondences, &provider(f));

    // Pick a category whose clusters span at least two shards at
    // N_SHARDS, so one batch for that category always crosses shards.
    let mut shards_of_category: HashMap<u32, std::collections::HashSet<usize>> = HashMap::new();
    let mut category_of_offer: HashMap<u64, u32> = HashMap::new();
    for r in &reconciled {
        let Some((attr, value)) = keys.route(r) else { continue };
        let shard = shard_of(&(r.category, attr, value), N_SHARDS);
        shards_of_category.entry(r.category.0).or_default().insert(shard);
        category_of_offer.insert(r.offer.0, r.category.0);
    }
    let (&category, _) = shards_of_category
        .iter()
        .find(|(_, shards)| shards.len() >= 2)
        .expect("tiny world must have a category spanning two shards");
    let batch: Vec<Offer> = f
        .corpus
        .iter()
        .filter(|o| category_of_offer.get(&o.id.0) == Some(&category))
        .cloned()
        .collect();
    let ids: Vec<OfferId> = batch.iter().map(|o| o.id).collect();
    assert!(batch.len() >= 2, "cross-shard batch needs at least two offers");

    let store = ShardedStore::new(f.correspondences.clone(), N_SHARDS);
    store.ingest(&f.world.catalog, &batch, &provider(f));
    let full = products_json(&store.products_in_category(pse_core::CategoryId(category)));
    store.retract(&f.world.catalog, &ids);
    let empty = products_json(&store.products_in_category(pse_core::CategoryId(category)));
    assert_ne!(full, empty, "the batch must be observable");

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut torn = Vec::new();
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let seen =
                    products_json(&store.products_in_category(pse_core::CategoryId(category)));
                if seen != full && seen != empty {
                    torn.push(seen);
                    if torn.len() >= 3 {
                        break;
                    }
                }
            }
            torn
        });
        for _ in 0..CYCLES {
            store.ingest(&f.world.catalog, &batch, &provider(f));
            store.retract(&f.world.catalog, &ids);
            if reader.is_finished() {
                break;
            }
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let torn = reader.join().expect("reader thread joins");
        assert!(
            torn.is_empty(),
            "reader observed {} torn cross-shard view(s); first: {}",
            torn.len(),
            torn[0]
        );
    });
}

/// Retract must only take write paths on shards that own at least one of
/// the ids (ISSUE 6 satellite): untouched shards keep their published
/// snapshot `Arc` pointer-identical, and a retract of only-unknown ids
/// leaves the whole published `StoreSnapshot` untouched.
#[test]
fn retract_leaves_unowned_shards_pointer_equal() {
    const N_SHARDS: usize = 8;
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), N_SHARDS);
    store.ingest(&f.world.catalog, &f.corpus, &provider(f));

    // Group the ingested offers by owning shard and retract one shard's.
    let config = RuntimeConfig::default();
    let keys = KeyAttributes::new(&config.key_attributes);
    let reconciled = reconcile_batch(&f.corpus, &f.correspondences, &provider(f));
    let mut by_shard: HashMap<usize, Vec<OfferId>> = HashMap::new();
    for r in &reconciled {
        let Some((attr, value)) = keys.route(r) else { continue };
        by_shard.entry(shard_of(&(r.category, attr, value), N_SHARDS)).or_default().push(r.offer);
    }
    assert!(by_shard.len() >= 2, "corpus must populate at least two shards");
    let (&target, ids) = by_shard.iter().next().expect("a populated shard");

    let before = store.snapshot();
    let stats = store.retract(&f.world.catalog, ids);
    assert_eq!(stats.offers_routed, ids.len());
    let after = store.snapshot();
    assert!(!std::sync::Arc::ptr_eq(&before, &after), "the batch must republish");
    for i in 0..N_SHARDS {
        let same = std::sync::Arc::ptr_eq(&before.shards[i], &after.shards[i]);
        if i == target {
            assert!(!same, "the owning shard must get a new snapshot");
        } else {
            assert!(same, "shard {i} owns none of the ids; its snapshot must be untouched");
        }
    }

    // Unknown ids touch no shard at all: not even a new StoreSnapshot.
    let stats = store.retract(&f.world.catalog, &[OfferId(u64::MAX), OfferId(u64::MAX - 1)]);
    assert_eq!(stats.offers_routed, 0);
    assert!(
        std::sync::Arc::ptr_eq(&after, &store.snapshot()),
        "a no-op retract must not republish"
    );
}

#[test]
fn concurrent_shard_disjoint_ingest_matches_sequential() {
    // Four threads ingest cluster-disjoint slices of the corpus through
    // the same `&ShardedStore` at once; because no cluster spans two
    // batches, the result must equal one sequential ingest of the
    // concatenation regardless of thread interleaving.
    let f = fixture();
    let config = RuntimeConfig::default();
    let keys = KeyAttributes::new(&config.key_attributes);
    let reconciled = reconcile_batch(&f.corpus, &f.correspondences, &provider(f));
    let route_of: HashMap<u64, usize> = reconciled
        .iter()
        .filter_map(|r| {
            let (attr, value) = keys.route(r)?;
            Some((r.offer.0, shard_of(&(r.category, attr, value), 4)))
        })
        .collect();
    let mut batches: Vec<Vec<Offer>> = vec![Vec::new(); 4];
    for offer in &f.corpus {
        // Unroutable offers can go anywhere; both sides drop them.
        let slot = route_of.get(&offer.id.0).copied().unwrap_or(0);
        batches[slot].push(offer.clone());
    }

    let mut sequential = ProductStore::new(f.correspondences.clone());
    for batch in &batches {
        sequential.ingest(&f.world.catalog, batch, &provider(f));
    }

    let concurrent = ShardedStore::new(f.correspondences.clone(), 4);
    std::thread::scope(|scope| {
        for batch in &batches {
            scope.spawn(|| {
                concurrent.ingest(&f.world.catalog, batch, &provider(f));
            });
        }
    });

    assert_eq!(
        products_json(&concurrent.products()),
        products_json(&sequential.products()),
        "thread interleaving must not affect cluster-disjoint ingests"
    );
    assert_eq!(concurrent.snapshot_json(), sequential.snapshot_json());
}
