//! The unified JSON error envelope (ISSUE 10 satellite): every error
//! response from every endpoint is
//! `{"error": {"code", "message", "trace_id"}}`, pinned over real
//! sockets for 400, 404, 405, 413, and 503 — plus the `/products/` and
//! `/debug/trace/` trailing-slash fallthroughs that used to leak into
//! the wrong handler and now 404 cleanly.
//!
//! Observability stays OFF in this binary, so `trace_id` is pinned to
//! the empty string (the envelope shape never changes); the traced
//! variant is covered in `trace_http.rs` where the obs lock lives.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, SpecProvider};

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let specs: HashMap<u64, Spec> =
            world.offers.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: specs[&o.id.0].clone(), ..o.clone() })
            .collect();
        Fixture { world, correspondences: offline.correspondences, corpus }
    })
}

fn started_server(shards: usize, config: ServerConfig) -> (pse_serve::ServerHandle, String) {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), shards);
    store.ingest(&f.world.catalog, &f.corpus, &FnProvider(|o: &Offer| o.spec.clone()));
    let handle = pse_serve::start(store, f.world.catalog.clone(), config).expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn envelope(code: &str, message: &str) -> String {
    format!("{{\"error\":{{\"code\":\"{code}\",\"message\":\"{message}\",\"trace_id\":\"\"}}}}")
}

/// Parse an envelope body, returning (code, message, trace_id). Panics
/// if the body is not exactly the envelope shape.
fn parse_envelope(body: &str) -> (String, String, String) {
    let v: serde::Value = serde_json::from_str(body).expect("error body is JSON");
    let serde::Value::Object(top) = &v else { panic!("top level is an object: {body}") };
    assert_eq!(top.len(), 1, "top level has only the error key: {body}");
    let serde::Value::Object(error) = v.get("error").expect("has error key") else {
        panic!("error is an object: {body}")
    };
    assert_eq!(error.len(), 3, "error has exactly code/message/trace_id: {body}");
    let field = |name: &str| match v.get("error").unwrap().get(name) {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("{name} must be a string, got {other:?}"),
    };
    (field("code"), field("message"), field("trace_id"))
}

/// Every handler-level and router-level failure carries the envelope,
/// byte-pinned (trace_id is "" with observability off).
#[test]
fn envelope_is_pinned_for_400_404_405() {
    let (handle, addr) = started_server(2, ServerConfig::default());

    // 400: a typed-path param that fails to parse.
    let (status, body) = http_request(&addr, "GET", "/products/banana", None).unwrap();
    assert_eq!(
        (status, body.as_str()),
        (400, envelope("bad_request", "category must be an integer, got \\\"banana\\\"").as_str())
    );

    // 400: missing query params on /product and /search.
    let (status, body) = http_request(&addr, "GET", "/product?category=1", None).unwrap();
    assert_eq!(
        (status, body.as_str()),
        (400, envelope("bad_request", "need category=<id>&attr=<name>&key=<value>").as_str())
    );
    let (status, body) = http_request(&addr, "GET", "/search", None).unwrap();
    assert_eq!(
        (status, body.as_str()),
        (400, envelope("bad_request", "need q=<free-text query>").as_str())
    );

    // 400: a POST body that is not JSON.
    let (status, body) = http_request(&addr, "POST", "/ingest", Some("not json")).unwrap();
    assert_eq!(status, 400);
    let (code, _, _) = parse_envelope(&body);
    assert_eq!(code, "bad_request");

    // 404: unknown path, and a known path with a missing resource.
    let (status, body) = http_request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!((status, body.as_str()), (404, envelope("not_found", "no such endpoint").as_str()));
    let (status, body) =
        http_request(&addr, "GET", "/product?category=4096&attr=x&key=y", None).unwrap();
    assert_eq!((status, body.as_str()), (404, envelope("not_found", "no such product").as_str()));

    // 405: non-GET/POST methods, regardless of path.
    for path in ["/healthz", "/ingest", "/never-heard-of-it"] {
        let (status, body) = http_request(&addr, "PUT", path, None).unwrap();
        assert_eq!(
            (status, body.as_str()),
            (405, envelope("method_not_allowed", "method not allowed").as_str()),
            "PUT {path}"
        );
    }

    // Wrong method on a known path stays 404 (the pre-router contract:
    // only unknown METHODS are 405).
    let (status, body) = http_request(&addr, "POST", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (404, envelope("not_found", "no such endpoint").as_str()));

    handle.shutdown().unwrap();
}

/// The trailing-slash fallthrough regression (ISSUE 10 satellite):
/// `GET /products/` used to reach the category handler with an empty
/// param and answer as if asked a question; `GET /debug/trace/` did the
/// same. A `{param}` segment never matches an empty segment, so both
/// are clean 404s now.
#[test]
fn trailing_slash_paths_are_404_not_fallthrough() {
    let (handle, addr) = started_server(2, ServerConfig::default());

    for path in ["/products/", "/products", "/debug/trace/", "/debug/trace", "/products/1/2"] {
        let (status, body) = http_request(&addr, "GET", path, None).unwrap();
        assert_eq!(
            (status, body.as_str()),
            (404, envelope("not_found", "no such endpoint").as_str()),
            "GET {path}"
        );
    }

    handle.shutdown().unwrap();
}

/// The parse-layer failures carry the envelope too: an oversized
/// request is a 413 with the store's stable code, and a request that is
/// not HTTP at all is a 400.
#[test]
fn envelope_covers_413_and_unparseable_requests() {
    let config = ServerConfig { max_request_bytes: 512, ..ServerConfig::default() };
    let (handle, addr) = started_server(2, config);

    let big = "x".repeat(2048);
    let (status, body) = http_request(&addr, "POST", "/ingest", Some(&big)).unwrap();
    assert_eq!(status, 413);
    let (code, message, trace_id) = parse_envelope(&body);
    assert_eq!(code, "request_too_large");
    assert!(message.contains("512"), "message names the cap: {message}");
    assert_eq!(trace_id, "");

    // Raw-socket garbage: still the envelope, still a live worker.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let _ = raw.shutdown(std::net::Shutdown::Write);
    let mut reply = Vec::new();
    let _ = raw.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 400"), "garbage gets 400: {text}");
    let json = &text[text.find("\r\n\r\n").unwrap() + 4..];
    let (code, _, _) = parse_envelope(json);
    assert_eq!(code, "bad_request");

    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}

/// Backpressure is enveloped too: the accept loop's direct 503 carries
/// `{"error":{"code":"overloaded",...}}` (with an empty trace id — no
/// request was read, so there is nothing to trace).
#[test]
fn envelope_covers_accept_queue_503() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    };
    let (handle, addr) = started_server(1, config);

    let stall_a = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let stall_b = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(
        (status, body.as_str()),
        (503, envelope("overloaded", "accept queue full").as_str())
    );

    drop(stall_a);
    drop(stall_b);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(http_request(&addr, "GET", "/healthz", None).unwrap().0, 200);
    handle.shutdown().unwrap();
}
