//! `GET /search` over real sockets (ISSUE 10 tentpole): ranked hits
//! with resolved constraints echoed, byte-identical bodies at every
//! shard count, and an index that follows ingest through the same
//! snapshot publish that refreshes the response cache.

use std::collections::HashMap;
use std::sync::OnceLock;

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::{ExtractingProvider, FnProvider, OfflineLearner, SpecProvider};

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let specs: HashMap<u64, Spec> =
            world.offers.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: specs[&o.id.0].clone(), ..o.clone() })
            .collect();
        Fixture { world, correspondences: offline.correspondences, corpus }
    })
}

fn started_server(shards: usize, corpus: &[Offer]) -> (pse_serve::ServerHandle, String) {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), shards);
    store.ingest(&f.world.catalog, corpus, &FnProvider(|o: &Offer| o.spec.clone()));
    let handle = pse_serve::start(store, f.world.catalog.clone(), ServerConfig::default())
        .expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Conservative query-string encoding: every non-unreserved byte as %XX.
fn encode(s: &str) -> String {
    let mut out = String::new();
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn get_search(addr: &str, q: &str, k: Option<usize>) -> (u16, String) {
    let mut path = format!("/search?q={}", encode(q));
    if let Some(k) = k {
        path.push_str(&format!("&k={k}"));
    }
    http_request(addr, "GET", &path, None).unwrap()
}

/// A query mix drawn from the corpus itself plus off-corpus noise, so
/// the byte-identity sweep covers constraint hits, free-text-only hits,
/// the no-category fallback, and empty results.
fn query_mix() -> Vec<String> {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 1);
    store.ingest(&f.world.catalog, &f.corpus, &FnProvider(|o: &Offer| o.spec.clone()));
    let products = store.products();
    assert!(!products.is_empty(), "fixture synthesizes products");
    let mut queries = Vec::new();
    for p in products.iter().take(6) {
        queries.push(p.key_value.clone());
        if let Some(av) = p
            .spec
            .iter()
            .find(|av| !av.value.is_empty() && (1..=3).contains(&pse_text::tokens(&av.value).len()))
        {
            queries.push(format!("{} {}", p.key_value, av.value));
            queries.push(av.value.clone());
        }
    }
    queries.push("zzz qqq xxyyzz".to_string());
    queries.push("the".to_string());
    queries
}

#[test]
fn search_returns_ranked_hits_with_constraints() {
    let f = fixture();
    let (handle, addr) = started_server(4, &f.corpus);
    let products = handle.store().products();
    let p = &products[0];

    // Query by the product's key value: the product must be among the
    // hits, and the body must be exactly what the engine computes.
    let (status, body) = get_search(&addr, &p.key_value, Some(10));
    assert_eq!(status, 200, "search failed: {body}");
    let key_json = serde_json::to_string(&p.key_value).unwrap();
    assert!(
        body.contains(&format!("\"key_value\":{key_json}")),
        "hits include the queried product: {body}"
    );
    for field in ["\"category\":", "\"constraints\":", "\"hits\":", "\"matched\":", "\"score\":"] {
        assert!(body.contains(field), "body carries {field}: {body}");
    }

    // A query that is a known attribute value resolves to an exact
    // constraint, echoed with its phrase.
    if let Some(av) = p
        .spec
        .iter()
        .find(|av| !av.value.is_empty() && (1..=3).contains(&pse_text::tokens(&av.value).len()))
    {
        let (status, body) = get_search(&addr, &av.value, Some(10));
        assert_eq!(status, 200);
        assert!(
            body.contains("\"exact\":true"),
            "a verbatim spec value resolves exactly: q={:?} body={body}",
            av.value
        );
    }

    // k caps the hit count.
    let (status, body) = get_search(&addr, &p.key_value, Some(1));
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"matched\":").count(), 1, "k=1 returns one hit: {body}");

    // Bad k values are envelope 400s.
    assert_eq!(get_search(&addr, "x", Some(0)).0, 400);
    assert_eq!(http_request(&addr, "GET", "/search?q=x&k=banana", None).unwrap().0, 400);

    // An off-corpus query is an empty result, not an error.
    let (status, body) = get_search(&addr, "zzz qqq xxyyzz", None);
    assert_eq!(status, 200);
    assert!(body.ends_with("\"hits\":[]}"), "no hits for garbage: {body}");

    handle.shutdown().unwrap();
}

/// The determinism half of the acceptance criteria: the same corpus
/// behind 1, 2, 4, and 8 shards answers every query in the mix with
/// byte-identical bodies (the per-category index is built from the
/// merged, cluster-key-sorted entries, so shard layout cannot leak).
#[test]
fn search_bytes_identical_across_shard_counts() {
    let f = fixture();
    let queries = query_mix();

    let answers = |shards: usize| -> Vec<(u16, String)> {
        let (handle, addr) = started_server(shards, &f.corpus);
        let out = queries.iter().map(|q| get_search(&addr, q, Some(10))).collect();
        handle.shutdown().unwrap();
        out
    };

    let reference = answers(1);
    assert!(
        reference.iter().any(|(status, body)| *status == 200 && !body.ends_with("\"hits\":[]}")),
        "the query mix produces at least one non-empty result"
    );
    for shards in [2, 4, 8] {
        let got = answers(shards);
        for (q, (want, have)) in queries.iter().zip(reference.iter().zip(&got)) {
            assert_eq!(want, have, "shards={shards} diverged on q={q:?}");
        }
    }
}

/// The index follows writes: a product absent from the initial corpus
/// becomes searchable after its offers arrive via `POST /ingest`, and
/// unsearchable again after `POST /retract` — both through the same
/// atomic snapshot publish the response cache rides.
#[test]
fn search_index_follows_ingest_and_retract() {
    let f = fixture();
    let (first_half, second_half) = f.corpus.split_at(f.corpus.len() / 2);
    let (handle, addr) = started_server(4, first_half);

    // A product that only exists once the second half lands.
    let full_store = ShardedStore::new(f.correspondences.clone(), 1);
    full_store.ingest(&f.world.catalog, &f.corpus, &FnProvider(|o: &Offer| o.spec.clone()));
    let before: Vec<String> =
        handle.store().products().iter().map(|p| p.key_value.clone()).collect();
    let Some(new_product) =
        full_store.products().into_iter().find(|p| !before.contains(&p.key_value))
    else {
        // The corpus split did not create a new key; nothing to assert.
        handle.shutdown().unwrap();
        return;
    };

    let hit_marker =
        format!("\"key_value\":{}", serde_json::to_string(&new_product.key_value).unwrap());
    let (status, body) = get_search(&addr, &new_product.key_value, Some(50));
    assert_eq!(status, 200);
    assert!(!body.contains(&hit_marker), "not yet ingested, not yet searchable: {body}");

    let batch = serde_json::to_string(&second_half.to_vec()).unwrap();
    let (status, stats) = http_request(&addr, "POST", "/ingest", Some(&batch)).unwrap();
    assert_eq!(status, 200, "ingest failed: {stats}");

    let (status, body) = get_search(&addr, &new_product.key_value, Some(50));
    assert_eq!(status, 200);
    assert!(body.contains(&hit_marker), "ingested, so searchable: {body}");

    let ids: Vec<u64> = new_product.offers.iter().map(|o| o.0).collect();
    let (status, _) =
        http_request(&addr, "POST", "/retract", Some(&serde_json::to_string(&ids).unwrap()))
            .unwrap();
    assert_eq!(status, 200);
    let (status, body) = get_search(&addr, &new_product.key_value, Some(50));
    assert_eq!(status, 200);
    assert!(!body.contains(&hit_marker), "retracted, so unsearchable again: {body}");

    handle.shutdown().unwrap();
}
