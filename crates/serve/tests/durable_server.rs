//! The durable server end-to-end (ISSUE 8 tentpole): WAL + segmented
//! snapshots under the HTTP write path, restart recovery, and the
//! background compaction fold.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::{World, WorldConfig};
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::{ExtractingProvider, OfflineLearner, SpecProvider};

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let specs: HashMap<u64, Spec> =
            world.offers.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: specs[&o.id.0].clone(), ..o.clone() })
            .collect();
        Fixture { world, correspondences: offline.correspondences, corpus }
    })
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pse-durable-srv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path, compact_bytes: u64) -> ServerConfig {
    ServerConfig {
        wal_path: Some(dir.join("wal.log")),
        snapshot_dir: Some(dir.join("segments")),
        compaction_threshold_bytes: compact_bytes,
        ..ServerConfig::default()
    }
}

/// Ingest over HTTP in batches, shut down cleanly, then restart from an
/// EMPTY seed store: the served state must come back from disk,
/// byte-identical on every endpoint.
#[test]
fn restart_recovers_http_served_state() {
    let f = fixture();
    let dir = tmp("restart");
    let config = durable_config(&dir, 1 << 20);

    let store = ShardedStore::new(f.correspondences.clone(), 4);
    let handle = pse_serve::start(store, f.world.catalog.clone(), config.clone()).unwrap();
    let addr = handle.addr().to_string();
    for batch in f.corpus.chunks(f.corpus.len() / 3 + 1) {
        let body = serde_json::to_string(&batch.to_vec()).unwrap();
        let (status, _) = http_request(&addr, "POST", "/ingest", Some(&body)).unwrap();
        assert_eq!(status, 200);
    }
    let first = handle.shutdown().unwrap();
    let expected_snapshot = first.snapshot_json();
    let categories: Vec<u32> = {
        let mut cs: Vec<u32> = first.products().iter().map(|p| p.category.0).collect();
        cs.dedup();
        cs
    };

    // Restart with a fresh empty store and a different shard count —
    // disk state wins, and the segment format is shard-count agnostic.
    let empty = ShardedStore::new(f.correspondences.clone(), 2);
    let handle = pse_serve::start(empty, f.world.catalog.clone(), config).unwrap();
    let addr = handle.addr().to_string();
    assert_eq!(handle.store().snapshot_json(), expected_snapshot, "state came back from disk");
    for c in categories {
        let (status, body) = http_request(&addr, "GET", &format!("/products/{c}"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            body,
            serde_json::to_string(&first.products_in_category(pse_core::CategoryId(c))).unwrap()
        );
    }
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With a tiny compaction threshold every batch crosses it, so the
/// background thread folds the WAL repeatedly while requests flow; the
/// folded state must still be exactly the ingested state, and the WAL
/// must actually have been rotated (stayed small).
#[test]
fn background_compaction_folds_while_serving() {
    let f = fixture();
    let dir = tmp("compact");
    let config = durable_config(&dir, 256);

    let store = ShardedStore::new(f.correspondences.clone(), 4);
    let handle = pse_serve::start(store, f.world.catalog.clone(), config.clone()).unwrap();
    let addr = handle.addr().to_string();
    for batch in f.corpus.chunks(8) {
        let body = serde_json::to_string(&batch.to_vec()).unwrap();
        let (status, _) = http_request(&addr, "POST", "/ingest", Some(&body)).unwrap();
        assert_eq!(status, 200);
    }
    // Retract a couple of offers so the log holds both record kinds.
    let ids: Vec<u64> = f.corpus.iter().take(2).map(|o| o.id.0).collect();
    let (status, _) =
        http_request(&addr, "POST", "/retract", Some(&serde_json::to_string(&ids).unwrap()))
            .unwrap();
    assert_eq!(status, 200);
    // Give the compactor a beat to run at least once mid-serve.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let manifest_before_shutdown =
        std::fs::read_to_string(dir.join("segments").join("manifest.json")).unwrap();
    assert!(
        manifest_before_shutdown.contains("\"snapshot_id\""),
        "compaction committed a manifest while serving"
    );
    let first = handle.shutdown().unwrap();

    let empty = ShardedStore::new(f.correspondences.clone(), 4);
    let handle = pse_serve::start(empty, f.world.catalog.clone(), config).unwrap();
    assert_eq!(handle.store().snapshot_json(), first.snapshot_json());
    // Clean shutdown folded everything: the log is just its header.
    let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    assert_eq!(wal_len, pse_wal::WAL_HEADER_LEN, "shutdown left a fully folded WAL");
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
