//! Serving layer for the product store: the paper's Product Search
//! Engine answers live queries while merchants stream offers in (PVLDB
//! 4(7), Fig. 4); this crate puts the incremental [`pse_store`] behind a
//! concurrent, sharded HTTP front — with zero external dependencies.
//!
//! Two layers:
//!
//! * **[`ShardedStore`]** — the cluster map partitioned by FNV-1a hash of
//!   `(category, key attribute, normalized key value)` into `N` shards,
//!   each behind its own `RwLock`. Reads take shared locks; an ingest
//!   batch is reconciled once, partitioned, and re-fused per shard in
//!   parallel via `pse-par`. All outputs (products, snapshots) are
//!   byte-identical to a single [`pse_store::ProductStore`] fed the same
//!   stream — see the `shard` module docs for why.
//! * **[`server`]** — an HTTP/1.1 server on `std::net::TcpListener` with
//!   a fixed worker pool and a bounded accept queue (503 on overload),
//!   serving `GET /products/{category}`, `GET /product?...`,
//!   `POST /ingest`, `POST /retract`, `GET /metrics`, `GET /healthz`,
//!   and `POST /shutdown`; per-connection timeouts, a request-size cap,
//!   panic-isolated handlers, and graceful drain + snapshot flush.
//!
//! The [`client`] module holds the matching minimal blocking client used
//! by tests, the `http_get` bin, and the `serve-bench` load generator.

pub mod client;
pub mod error;
pub mod http;
pub mod server;
pub mod shard;

pub use client::{http_request, http_request_timeout};
pub use error::ServeError;
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::{shard_of, ShardedStore};
