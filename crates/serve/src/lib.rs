//! Serving layer for the product store: the paper's Product Search
//! Engine answers live queries while merchants stream offers in (PVLDB
//! 4(7), Fig. 4); this crate puts the incremental [`pse_store`] behind a
//! concurrent, sharded HTTP front — with zero external dependencies.
//!
//! Three layers:
//!
//! * **[`ShardedStore`]** — the cluster map partitioned by FNV-1a hash of
//!   `(category, key attribute, normalized key value)` into `N` shards.
//!   Writers are serialized per shard; readers never touch a shard lock
//!   or a serializer — they load an immutable published [`snapshot`]
//!   (MVCC) that includes pre-serialized `GET /products/{category}`
//!   response bodies, invalidated precisely by the dirty-cluster delta
//!   each ingest/retract reports. All outputs (products, snapshots,
//!   cached responses) are byte-identical to a single
//!   [`pse_store::ProductStore`] fed the same stream — see the `shard`
//!   module docs for why.
//! * **[`snapshot`]** — the immutable read-model types: per-shard
//!   snapshots with per-product cached JSON, the whole-store snapshot
//!   with its response cache, and the swap cell readers load it from.
//! * **[`server`]** — an HTTP/1.1 server on `std::net::TcpListener` with
//!   a fixed worker pool and a bounded accept queue (503 on overload),
//!   serving `GET /products/{category}`, `GET /product?...`,
//!   `POST /ingest`, `POST /retract`, `GET /metrics`, `GET /healthz`,
//!   and `POST /shutdown`; per-connection timeouts, a 1 MiB request-size
//!   cap (413), panic-isolated handlers, and graceful drain + snapshot
//!   flush.
//!
//! When observability is on (`PSE_OBS=1`), every request is traced into
//! a per-request span tree (parse → route → handler stages, including
//! spans from `pse-par` workers the handler fans out to), identified by
//! the `X-Pse-Trace-Id` request header when the caller sends one. A
//! [`pse_obs::FlightRecorder`] keeps the recent window plus every
//! request over a slowness threshold, served at `GET /debug/requests`
//! and `GET /debug/trace/{id}`; per-endpoint RED metrics
//! (`serve.endpoint.<name>.{requests,errors,us}`) land in `/metrics`.
//! None of it changes a response byte — the determinism tests pin
//! tracing on vs off byte-identical on every product endpoint.
//!
//! When [`ServerConfig`] sets both `wal_path` and `snapshot_dir`, the
//! [`durable`] module puts `pse-wal` under the write path: every
//! ingest/retract is appended to the write-ahead log and fsynced before
//! it is applied (log-then-apply under one mutex), a background thread
//! folds a grown log into segmented binary snapshots (only dirty shards
//! are rewritten), and startup recovers segments + WAL tail — so a
//! SIGKILL at any moment loses nothing that was acknowledged.
//!
//! The [`client`] module holds the matching minimal blocking client used
//! by tests, the `http_get` bin, and the `serve-bench` load generator.

pub mod client;
pub mod durable;
pub mod error;
pub mod http;
pub mod router;
pub mod server;
pub mod shard;
pub mod snapshot;

pub use client::{http_request, http_request_timeout};
pub use durable::{
    durable_ingest, durable_ingest_serial, durable_retract, durable_snapshot, open_durable,
    DurableCtx,
};
pub use error::{store_error_code, ServeError};
pub use http::Body;
pub use router::{Method, Params, Query, Route, RouteOutcome, Router, Seg};
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::{shard_of, SearchOutcome, ShardedStore, ShardedWrite};
