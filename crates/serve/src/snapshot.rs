//! Immutable read-model types for the MVCC serving path.
//!
//! A [`ShardSnapshot`] is one shard's visible products frozen at a
//! version: a cluster-key-ordered map of [`ProductEntry`] values, each
//! carrying the product *and* its pre-serialized JSON. Snapshots are
//! never mutated — an ingest/retract builds a successor by cloning the
//! map and replacing only the entries its dirty-cluster delta names, so
//! untouched entries keep their `Arc` identity across versions.
//!
//! A [`StoreSnapshot`] is the whole store frozen at one instant: the
//! per-shard snapshots plus a category → pre-assembled response-body
//! cache. Readers obtain it from a [`SnapshotCell`] with a single
//! refcount increment and then see a fully consistent state — either all
//! of a published batch or none of it — which is what closes the torn
//! cross-shard read the per-shard-lock read path allowed.
//!
//! Entry `Arc` identity doubles as the invalidation signal: the
//! publisher diffs the old and new shard snapshots pointer-by-pointer
//! ([`changed_categories`]) and rebuilds exactly the category bodies
//! whose entries changed. Because the vendored `serde_json` serializes a
//! `Vec<T>` as the compact `[` + `,`-joined elements + `]`, joining the
//! cached per-product JSON strings reproduces
//! `serde_json::to_string(&products_in_category(c))` byte for byte.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock, RwLock};

use pse_core::{CategoryId, CorrespondenceSet};
use pse_query::CategoryIndex;
use pse_store::{ClusterKey, ProductStore};
use pse_synthesis::SynthesizedProduct;

/// One visible product with its serialization cached.
#[derive(Debug)]
pub struct ProductEntry {
    /// The synthesized product.
    pub product: SynthesizedProduct,
    /// `serde_json::to_string(&product)`, serialized once at publish.
    pub json: Arc<str>,
}

impl ProductEntry {
    fn new(product: SynthesizedProduct) -> Arc<Self> {
        let json =
            serde_json::to_string(&product).expect("product serialization is infallible").into();
        Arc::new(Self { product, json })
    }
}

/// One category's visible clusters within a shard, in key order. The
/// full [`ClusterKey`] stays the map key (the category component is
/// redundant with the outer level) so point lookups and iterators hand
/// out the same types as a flat map would.
pub type CategoryClusters = BTreeMap<ClusterKey, Arc<ProductEntry>>;

/// One shard's visible products, frozen at a version.
///
/// Two-level layout: category → `Arc` of that category's cluster map.
/// A successor snapshot clones the outer map (a handful of refcounts)
/// and deep-clones only the categories its delta touches, so per-commit
/// publish cost is bounded by category size, not store size — with one
/// flat map, every commit re-cloned every key in the shard, which at
/// paper scale cost more than the fsync it rode behind.
#[derive(Debug, Default)]
pub struct ShardSnapshot {
    /// Strictly increasing across successive snapshots of one shard;
    /// the publisher never replaces a snapshot with an older version.
    pub version: u64,
    /// Visible products (fused, at or above `min_cluster_size`),
    /// grouped by category, each category in cluster-key order.
    /// Categories with no visible product are absent.
    pub categories: BTreeMap<CategoryId, Arc<CategoryClusters>>,
}

impl ShardSnapshot {
    /// Snapshot every visible product of `store` (initial build).
    pub fn from_store(version: u64, store: &ProductStore) -> Self {
        let mut categories: BTreeMap<CategoryId, Arc<CategoryClusters>> = BTreeMap::new();
        for (k, p) in store.products_keyed() {
            Arc::make_mut(categories.entry(k.0).or_default())
                .insert(k.clone(), ProductEntry::new(p.clone()));
        }
        Self { version, categories }
    }

    /// Build the successor snapshot: carry categories forward by `Arc`
    /// clone, deep-clone only the ones named by `dirty`, and re-resolve
    /// the dirty keys against the store — re-serializing a changed
    /// product, dropping a vanished one.
    pub fn rebuilt(&self, version: u64, store: &ProductStore, dirty: &[ClusterKey]) -> Self {
        let mut categories = self.categories.clone();
        for key in dirty {
            match store.product_for(key) {
                Some(p) => {
                    Arc::make_mut(categories.entry(key.0).or_default())
                        .insert(key.clone(), ProductEntry::new(p.clone()));
                }
                None => {
                    if let Some(cat) = categories.get_mut(&key.0) {
                        Arc::make_mut(cat).remove(key);
                        if cat.is_empty() {
                            categories.remove(&key.0);
                        }
                    }
                }
            }
        }
        Self { version, categories }
    }

    /// This shard's entries for one category, in cluster-key order.
    pub fn category_entries(
        &self,
        category: CategoryId,
    ) -> impl Iterator<Item = (&ClusterKey, &Arc<ProductEntry>)> {
        self.categories.get(&category).into_iter().flat_map(|m| m.iter())
    }

    /// Every entry in the shard, in cluster-key order.
    pub fn entries(&self) -> impl Iterator<Item = (&ClusterKey, &Arc<ProductEntry>)> {
        self.categories.values().flat_map(|m| m.iter())
    }

    /// The entry for `key`, if visible.
    pub fn entry(&self, key: &ClusterKey) -> Option<&Arc<ProductEntry>> {
        self.categories.get(&key.0)?.get(key)
    }
}

/// One category's `GET /products/{category}` response body, assembled
/// lazily: a publish that touches the category installs an empty slot,
/// and the first reader pays the assembly (subsequent readers share the
/// built body). Keeps response assembly — O(category size) of JSON
/// joining — off the commit path entirely, where it taxed every ingest
/// whether or not anything ever read the category.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    cell: OnceLock<Arc<[u8]>>,
}

impl ResponseSlot {
    /// The built body, if a reader already assembled it.
    pub fn built(&self) -> Option<&Arc<[u8]>> {
        self.cell.get()
    }

    /// The body, assembling (and caching) it on first call.
    pub fn get_or_build(&self, shards: &[Arc<ShardSnapshot>], category: CategoryId) -> Arc<[u8]> {
        Arc::clone(self.cell.get_or_init(|| category_response(shards, category)))
    }
}

/// One category's `GET /search` index, assembled lazily exactly like
/// [`ResponseSlot`]: publish installs an empty slot for each dirty
/// category (untouched categories carry their built index forward by
/// `Arc`), and the first search after that pays the build. The index is
/// built from the merged shard entries in cluster-key order, so it is
/// identical at any shard count, and it swaps atomically with the store
/// snapshot it lives in — a search never sees an index newer or older
/// than the products it ranks.
#[derive(Debug, Default)]
pub struct SearchSlot {
    cell: OnceLock<Arc<CategoryIndex>>,
}

impl SearchSlot {
    /// The index, building (and caching) it on first call.
    pub fn get_or_build(
        &self,
        shards: &[Arc<ShardSnapshot>],
        category: CategoryId,
        correspondences: &CorrespondenceSet,
    ) -> Arc<CategoryIndex> {
        Arc::clone(self.cell.get_or_init(|| {
            let mut entries: Vec<(&ClusterKey, &Arc<ProductEntry>)> =
                shards.iter().flat_map(|s| s.category_entries(category)).collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            let products: Vec<&SynthesizedProduct> =
                entries.iter().map(|(_, e)| &e.product).collect();
            Arc::new(CategoryIndex::build(category, &products, correspondences))
        }))
    }
}

/// The whole store frozen at one instant: per-shard snapshots plus the
/// `GET /products/{category}` response-body cache.
#[derive(Debug, Default)]
pub struct StoreSnapshot {
    /// One snapshot per shard, index-aligned with the shard vector.
    pub shards: Vec<Arc<ShardSnapshot>>,
    /// Category → response-body slot (the body is the compact JSON
    /// array of the category's products in cluster-key order).
    /// Categories that never had a visible product are absent; readers
    /// serve [`empty_response`] for them. Slots for categories
    /// untouched by a publish carry forward already built.
    pub responses: BTreeMap<CategoryId, Arc<ResponseSlot>>,
    /// Category → search-index slot, invalidated in lockstep with
    /// `responses` (same dirty-category diff, same lazy build).
    pub search: BTreeMap<CategoryId, Arc<SearchSlot>>,
}

/// The shared `[]` body served for categories with no cached response.
pub fn empty_response() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(&b"[]"[..])))
}

/// Assemble one category's response body from the shard snapshots:
/// merge the (disjoint) per-shard entries into cluster-key order and
/// join their cached JSON — byte-identical to serializing the product
/// vector.
pub fn category_response(shards: &[Arc<ShardSnapshot>], category: CategoryId) -> Arc<[u8]> {
    let mut entries: Vec<(&ClusterKey, &Arc<ProductEntry>)> =
        shards.iter().flat_map(|s| s.category_entries(category)).collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut body = Vec::with_capacity(
        2 + entries.iter().map(|(_, e)| e.json.len() + 1).sum::<usize>().saturating_sub(1),
    );
    body.push(b'[');
    for (i, (_, e)) in entries.iter().enumerate() {
        if i > 0 {
            body.push(b',');
        }
        body.extend_from_slice(e.json.as_bytes());
    }
    body.push(b']');
    body.into()
}

/// Collect into `out` every category whose entries differ between two
/// snapshots of the same shard. Carry-forward preserves `Arc` identity
/// for untouched categories, so one pointer comparison per category
/// finds exactly the changed, added, and removed ones regardless of
/// which writer published first — no per-cluster walk.
pub fn changed_categories(
    old: &ShardSnapshot,
    new: &ShardSnapshot,
    out: &mut BTreeSet<CategoryId>,
) {
    let mut a = old.categories.iter().peekable();
    let mut b = new.categories.iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some((ka, ea)), Some((kb, eb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    out.insert(**ka);
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    out.insert(**kb);
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    if !Arc::ptr_eq(ea, eb) {
                        out.insert(**ka);
                    }
                    a.next();
                    b.next();
                }
            },
            (Some((ka, _)), None) => {
                out.insert(**ka);
                a.next();
            }
            (None, Some((kb, _))) => {
                out.insert(**kb);
                b.next();
            }
            (None, None) => break,
        }
    }
}

/// The swap cell readers load the current [`StoreSnapshot`] from.
///
/// Zero-dependency stand-in for `ArcSwap`: the read-side critical
/// section is a single refcount increment under a shared lock, and the
/// only exclusive hold is the pointer store in [`SnapshotCell::swap`] —
/// readers never wait on snapshot *construction*, which happens entirely
/// off to the side.
#[derive(Debug)]
pub struct SnapshotCell {
    cell: RwLock<Arc<StoreSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: Arc<StoreSnapshot>) -> Self {
        Self { cell: RwLock::new(initial) }
    }

    /// The current snapshot (one refcount increment).
    pub fn load(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.cell.read().expect("snapshot cell lock"))
    }

    /// Publish `next` (one pointer store under the exclusive lock).
    pub fn swap(&self, next: Arc<StoreSnapshot>) {
        *self.cell.write().expect("snapshot cell lock") = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cat: u32, key: &str, json: &str) -> (ClusterKey, Arc<ProductEntry>) {
        let product = SynthesizedProduct {
            category: CategoryId(cat),
            key_attribute: "MPN".into(),
            key_value: key.into(),
            spec: pse_core::Spec::default(),
            offers: Vec::new(),
        };
        (
            (CategoryId(cat), "MPN".into(), key.into()),
            Arc::new(ProductEntry { product, json: json.into() }),
        )
    }

    fn snap(version: u64, entries: Vec<(ClusterKey, Arc<ProductEntry>)>) -> ShardSnapshot {
        let mut categories: BTreeMap<CategoryId, Arc<CategoryClusters>> = BTreeMap::new();
        for (k, e) in entries {
            Arc::make_mut(categories.entry(k.0).or_default()).insert(k, e);
        }
        ShardSnapshot { version, categories }
    }

    #[test]
    fn category_response_merges_shards_in_key_order() {
        let (k1, e1) = entry(1, "aaa", "{\"a\":1}");
        let (k2, e2) = entry(1, "bbb", "{\"b\":2}");
        let (k3, e3) = entry(2, "ccc", "{\"c\":3}");
        let shards =
            vec![Arc::new(snap(1, vec![(k2, e2), (k3, e3)])), Arc::new(snap(1, vec![(k1, e1)]))];
        assert_eq!(&category_response(&shards, CategoryId(1))[..], b"[{\"a\":1},{\"b\":2}]");
        assert_eq!(&category_response(&shards, CategoryId(2))[..], b"[{\"c\":3}]");
        assert_eq!(&category_response(&shards, CategoryId(9))[..], b"[]");
        assert_eq!(&empty_response()[..], b"[]");
    }

    #[test]
    fn changed_categories_walks_pointer_identity() {
        let (k1, e1) = entry(1, "aaa", "{}");
        let (k2, e2) = entry(2, "bbb", "{}");
        let (k3, e3) = entry(3, "ccc", "{}");
        let old = snap(1, vec![(k1, e1), (k2.clone(), e2)]);
        // Successor built the way `rebuilt` does: category 1 carried
        // forward (same Arc), category 2 replaced, category 3 added.
        let (_, e2b) = entry(2, "bbb", "{}");
        let mut categories = old.categories.clone();
        categories.insert(CategoryId(2), Arc::new(CategoryClusters::from([(k2, e2b)])));
        Arc::make_mut(categories.entry(CategoryId(3)).or_default()).insert(k3, e3);
        let new = ShardSnapshot { version: 2, categories };
        let mut out = BTreeSet::new();
        changed_categories(&old, &new, &mut out);
        assert_eq!(out, BTreeSet::from([CategoryId(2), CategoryId(3)]));
        // Removal is also a change.
        let mut out = BTreeSet::new();
        changed_categories(&new, &old, &mut out);
        assert_eq!(out, BTreeSet::from([CategoryId(2), CategoryId(3)]));
    }

    #[test]
    fn snapshot_cell_swaps_atomically() {
        let cell = SnapshotCell::new(Arc::new(StoreSnapshot::default()));
        let first = cell.load();
        assert!(Arc::ptr_eq(&first, &cell.load()));
        cell.swap(Arc::new(StoreSnapshot::default()));
        assert!(!Arc::ptr_eq(&first, &cell.load()));
    }
}
