//! Typed request routing.
//!
//! One static table of [`Route`]s replaces the old pair of parallel
//! `match (method, path)` blocks (one for dispatch, one for metric
//! labels). Each route carries its method, a typed [`Seg`] pattern with
//! named parameters (`/products/{category}`), its span/metric label,
//! and its RED metric names — so the label and metrics of an endpoint
//! are derived from the same row that dispatches it, and a route cannot
//! exist without them.
//!
//! Matching semantics preserve the legacy server's observable behavior,
//! minus its two `starts_with` fallthrough bugs:
//!
//! * unknown methods (anything but GET/POST) → 405, whatever the path;
//! * a GET/POST that matches no `(method, pattern)` row → 404 — even
//!   when the path exists under the other method, exactly like the old
//!   `("GET" | "POST", _) => 404` arm;
//! * a `{param}` segment never matches an empty segment, so
//!   `GET /products/` and `GET /debug/trace/` are clean 404s instead of
//!   falling through into handlers with an empty capture.

use crate::http::Request;

/// The request methods the server routes. Anything else is 405.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl Method {
    /// Parse a request-line method; `None` for methods the server does
    /// not route (the caller answers 405).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "GET" => Some(Self::Get),
            "POST" => Some(Self::Post),
            _ => None,
        }
    }
}

/// One segment of a route pattern.
#[derive(Debug, Clone, Copy)]
pub enum Seg {
    /// Matches exactly this literal segment.
    Lit(&'static str),
    /// Matches any single *non-empty* segment, captured under this name.
    Param(&'static str),
}

/// The RED-metric names of one endpoint, precomputed so the request
/// path never formats a metric name.
#[derive(Debug)]
pub struct EndpointMetrics {
    /// Requests routed to the endpoint.
    pub requests: &'static str,
    /// Server-side failures (5xx or client-gone).
    pub errors: &'static str,
    /// Request-latency histogram (microseconds).
    pub us: &'static str,
}

/// One routed endpoint: pattern, label, metrics, and handler in a
/// single row. Generic over the handler type so the table stays free of
/// server internals.
#[derive(Debug)]
pub struct Route<H: 'static> {
    /// Method the route answers.
    pub method: Method,
    /// Path pattern, one [`Seg`] per segment.
    pub pattern: &'static [Seg],
    /// Span/metric label (also the flight-recorder endpoint name).
    pub label: &'static str,
    /// RED metric names derived from `label`.
    pub metrics: EndpointMetrics,
    /// The handler the route dispatches to.
    pub handler: H,
}

/// Captured path parameters of a matched route, borrowed from the
/// request path.
#[derive(Debug, Default)]
pub struct Params<'p> {
    pairs: Vec<(&'static str, &'p str)>,
}

impl<'p> Params<'p> {
    /// The captured value of `{name}`, if the pattern has it.
    pub fn get(&self, name: &str) -> Option<&'p str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// The outcome of routing one request line.
pub enum RouteOutcome<'r, 'p, H: 'static> {
    /// A route matched; dispatch its handler with the captures.
    Matched(&'r Route<H>, Params<'p>),
    /// GET/POST, but no `(method, pattern)` row matched.
    NotFound,
    /// A method the table does not route at all.
    MethodNotAllowed,
}

/// A static route table.
#[derive(Debug)]
pub struct Router<H: 'static> {
    routes: &'static [Route<H>],
}

impl<H> Router<H> {
    /// A router over a static table.
    pub const fn new(routes: &'static [Route<H>]) -> Self {
        Self { routes }
    }

    /// The table, for metric seeding and label lookups.
    pub fn routes(&self) -> &'static [Route<H>] {
        self.routes
    }

    /// Route one request line. First matching row wins; table order is
    /// the precedence order (the current table has no overlapping
    /// patterns, so order never matters in practice).
    pub fn find<'p>(&self, method: &str, path: &'p str) -> RouteOutcome<'_, 'p, H> {
        let Some(method) = Method::parse(method) else {
            return RouteOutcome::MethodNotAllowed;
        };
        let Some(rest) = path.strip_prefix('/') else {
            return RouteOutcome::NotFound;
        };
        let segments: Vec<&str> = rest.split('/').collect();
        for route in self.routes {
            if route.method != method {
                continue;
            }
            if let Some(params) = match_pattern(route.pattern, &segments) {
                return RouteOutcome::Matched(route, params);
            }
        }
        RouteOutcome::NotFound
    }
}

/// Match one pattern against the split path segments; `None` on any
/// mismatch. `{param}` requires a non-empty segment — a trailing slash
/// produces an empty final segment and correctly fails here.
fn match_pattern<'p>(pattern: &'static [Seg], segments: &[&'p str]) -> Option<Params<'p>> {
    if pattern.len() != segments.len() {
        return None;
    }
    let mut pairs = Vec::new();
    for (seg, &got) in pattern.iter().zip(segments) {
        match seg {
            Seg::Lit(want) => {
                if *want != got {
                    return None;
                }
            }
            Seg::Param(name) => {
                if got.is_empty() {
                    return None;
                }
                pairs.push((*name, got));
            }
        }
    }
    Some(Params { pairs })
}

/// Typed accessor over a request's already-percent-decoded query pairs
/// — the one query parser every handler shares.
#[derive(Debug, Clone, Copy)]
pub struct Query<'a> {
    pairs: &'a [(String, String)],
}

impl<'a> Query<'a> {
    /// The query view of one request.
    pub fn of(request: &'a Request) -> Self {
        Self { pairs: &request.query }
    }

    /// First value for `name` (duplicate keys keep wire order).
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &[Route<u8>] = &[
        Route {
            method: Method::Get,
            pattern: &[Seg::Lit("healthz")],
            label: "healthz",
            metrics: EndpointMetrics { requests: "r", errors: "e", us: "u" },
            handler: 0,
        },
        Route {
            method: Method::Get,
            pattern: &[Seg::Lit("products"), Seg::Param("category")],
            label: "products",
            metrics: EndpointMetrics { requests: "r", errors: "e", us: "u" },
            handler: 1,
        },
        Route {
            method: Method::Post,
            pattern: &[Seg::Lit("ingest")],
            label: "ingest",
            metrics: EndpointMetrics { requests: "r", errors: "e", us: "u" },
            handler: 2,
        },
    ];

    const ROUTER: Router<u8> = Router::new(TABLE);

    fn outcome(method: &str, path: &str) -> Result<(&'static str, Vec<String>), u16> {
        match ROUTER.find(method, path) {
            RouteOutcome::Matched(r, p) => {
                Ok((r.label, p.pairs.iter().map(|(_, v)| v.to_string()).collect()))
            }
            RouteOutcome::NotFound => Err(404),
            RouteOutcome::MethodNotAllowed => Err(405),
        }
    }

    #[test]
    fn literal_and_param_matching() {
        assert_eq!(outcome("GET", "/healthz"), Ok(("healthz", vec![])));
        assert_eq!(outcome("GET", "/products/7"), Ok(("products", vec!["7".into()])));
        assert_eq!(outcome("POST", "/ingest"), Ok(("ingest", vec![])));
    }

    #[test]
    fn empty_param_segment_is_not_found() {
        assert_eq!(outcome("GET", "/products/"), Err(404));
        assert_eq!(outcome("GET", "/products"), Err(404));
        assert_eq!(outcome("GET", "/products/7/extra"), Err(404));
    }

    #[test]
    fn wrong_method_on_known_path_is_404_like_legacy() {
        assert_eq!(outcome("POST", "/healthz"), Err(404));
        assert_eq!(outcome("GET", "/ingest"), Err(404));
    }

    #[test]
    fn unrouted_methods_are_405() {
        assert_eq!(outcome("PUT", "/healthz"), Err(405));
        assert_eq!(outcome("DELETE", "/nope"), Err(405));
        assert_eq!(outcome("", "/healthz"), Err(405));
    }

    #[test]
    fn pathological_paths_are_404() {
        assert_eq!(outcome("GET", ""), Err(404));
        assert_eq!(outcome("GET", "healthz"), Err(404), "missing leading slash");
        assert_eq!(outcome("GET", "/"), Err(404));
        assert_eq!(outcome("GET", "//"), Err(404));
    }

    #[test]
    fn query_accessor_reads_first_of_duplicates() {
        let request = Request {
            method: "GET".into(),
            path: "/search".into(),
            query: vec![
                ("q".into(), "canon 12mp".into()),
                ("q".into(), "second".into()),
                ("empty".into(), String::new()),
            ],
            headers: Vec::new(),
            body: Vec::new(),
        };
        let q = Query::of(&request);
        assert_eq!(q.get("q"), Some("canon 12mp"));
        assert_eq!(q.get("empty"), Some(""));
        assert_eq!(q.get("absent"), None);
    }
}
