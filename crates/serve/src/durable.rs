//! The durable write path: `pse-wal` glued to [`ShardedStore`].
//!
//! Commits are pipelined so the disk and the cores stay busy at the
//! same time. One commit walks four stages:
//!
//! ```text
//! 1. reconcile           (CPU, no locks — overlaps other commits' IO)
//! 2. stage into the WAL  (brief durability-mutex hold; assigns the
//!                         commit LSN and the apply sequence number)
//! 3. wait_durable(lsn)   (group commit: one leader fsyncs the whole
//!                         group — see pse_wal::GroupCommitter)
//! 4. combine-apply       (the first committer out of the sync applies
//!                         every durable queued record in sequence
//!                         order and wakes the owners — one snapshot
//!                         publish and one dirty-marking per batch)
//! ```
//!
//! The invariants PR 8 established still hold: a record is fsynced
//! *before* its effects are visible to readers (stage → wait_durable →
//! apply), and every *published* state equals a sequential replay of a
//! prefix of the log — step 4's combiner applies strictly in sequence
//! order, which preserves the second one now that commits overlap. A
//! batch's intermediate store states are never observable: the owners
//! of every batched commit still hold the snapshot gate for read, so no
//! fold can run until the batch's publish and dirty-marking land.
//!
//! Snapshots take the `gate` write lock, which excludes every in-flight
//! commit (commits hold it for read from stage through apply), so a
//! fold captures exactly the applied-and-durable state and the WAL can
//! rotate with nothing staged-but-unsynced.
//!
//! Lock order: snapshot gate → durability mutex → shard locks, never
//! any other order, so the write path cannot deadlock against
//! compaction.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use pse_core::{Catalog, Offer, OfferId};
use pse_store::{IngestStats, ProductStore};
use pse_synthesis::{ReconciledOffer, SpecProvider};
use pse_wal::{Durability, DurabilityConfig, RecoveryStats, SnapshotStats, WalRecord};

use crate::error::ServeError;
use crate::shard::ShardedStore;

/// The most commits one combiner applies before handing off. Bounds the
/// latency a helped commit adds to the combiner's own return; groups are
/// never larger than the writer count in practice, so the cap only binds
/// under a deep backlog.
const MAX_COMBINE: usize = 64;

/// Shared state of the durable write path (module docs for the
/// protocol). Wraps the [`Durability`] context with the snapshot gate
/// and the apply turnstile that keep overlapping commits safe.
#[derive(Debug)]
pub struct DurableCtx {
    durability: Mutex<Durability>,
    committer: std::sync::Arc<pse_wal::GroupCommitter>,
    /// Commits hold this for read from stage through apply; snapshots
    /// hold it for write. Always acquired before the durability mutex.
    gate: RwLock<()>,
    /// Next apply sequence number, assigned while staging (under the
    /// durability mutex, so sequence order equals log order). Never
    /// reset — LSNs restart at each WAL rotation, sequence numbers
    /// don't, which is why the turnstile tracks them instead of LSNs.
    seq: AtomicU64,
    /// Apply turnstile: highest completed sequence number, the staged
    /// work of every not-yet-applied commit, and the parked thread of
    /// each waiting committer. The first committer to come out of
    /// `wait_durable` and find itself next in sequence becomes the
    /// **combiner**: it applies every queued, durable, consecutive
    /// record in one pass — snapshot published once, dirty shards
    /// marked once — deposits each owner's stats, and wakes them. A
    /// helped commit never parks here at all, and the per-commit
    /// park/unpark handoff chain the old turnstile serialized after
    /// every group fsync disappears.
    turnstile: Mutex<Turnstile>,
}

#[derive(Debug, Default)]
struct Turnstile {
    /// Highest sequence number whose apply (or abandonment) completed.
    applied: u64,
    /// Staged-but-unapplied commits, keyed by sequence number.
    items: BTreeMap<u64, WorkItem>,
    /// Parked committers by the sequence number they wait on.
    waiting: BTreeMap<u64, std::thread::Thread>,
}

/// One staged commit's pending apply.
#[derive(Debug)]
struct WorkItem {
    /// The commit's LSN: a combiner may only apply items whose LSN the
    /// group committer reports durable.
    lsn: u64,
    /// The record to apply; taken by the combiner that applies it.
    work: Option<ApplyWork>,
    /// The apply's stats, deposited by the combiner for the owner.
    done: Option<IngestStats>,
}

/// What a staged commit applies to the store once durable.
#[derive(Debug)]
enum ApplyWork {
    Ingest(Vec<ReconciledOffer>),
    Retract(Vec<OfferId>),
}

impl DurableCtx {
    /// Wrap an opened durability context for concurrent commits.
    pub fn new(durability: Durability) -> Self {
        let committer = durability.committer();
        Self {
            durability: Mutex::new(durability),
            committer,
            gate: RwLock::new(()),
            seq: AtomicU64::new(0),
            turnstile: Mutex::new(Turnstile::default()),
        }
    }

    /// The underlying durability context (e.g. for
    /// [`Durability::wants_compaction`] checks). Hold it briefly — a
    /// long hold stalls every commit at its staging step.
    pub fn durability(&self) -> &Mutex<Durability> {
        &self.durability
    }

    /// Queue a staged commit's apply work. Called after the durability
    /// mutex is released (the turnstile is taken after it, never under
    /// it — the combiner takes them in the opposite order for
    /// `mark_dirty`). A combiner scanning past a sequence number whose
    /// item has not landed yet simply stops there; that owner finds
    /// itself next in line when it arrives and combines from its own
    /// sequence onward.
    fn enqueue(&self, seq: u64, lsn: u64, work: ApplyWork) {
        let mut ts = self.turnstile.lock().expect("apply turnstile");
        ts.items.insert(seq, WorkItem { lsn, work: Some(work), done: None });
    }

    /// Finish a durable commit: return its apply stats, either applied
    /// here (this thread combined) or deposited by another combiner.
    fn complete(&self, seq: u64, store: &ShardedStore, catalog: &Catalog) -> IngestStats {
        loop {
            let mut ts = self.turnstile.lock().expect("apply turnstile");
            if let Some(stats) = ts.items.get_mut(&seq).and_then(|item| item.done.take()) {
                // A combiner applied this commit for us.
                ts.items.remove(&seq);
                ts.waiting.remove(&seq);
                return stats;
            }
            if ts.applied == seq - 1 {
                return self.combine(ts, seq, store, catalog);
            }
            // Not next and not helped yet: park until a combiner (or an
            // abandoning predecessor) wakes us. An unpark issued before
            // the park leaves a token, so the deposit-then-park race
            // falls straight through the next loop round.
            ts.waiting.insert(seq, std::thread::current());
            drop(ts);
            std::thread::park();
        }
    }

    /// Apply every queued, durable, consecutive record starting at `seq`
    /// (which must be next in sequence; `ts` is the held turnstile
    /// lock). One snapshot publish and one dirty-shard marking cover the
    /// whole batch; owners of helped commits get their stats deposited
    /// and are woken. Returns `seq`'s own stats.
    fn combine(
        &self,
        mut ts: std::sync::MutexGuard<'_, Turnstile>,
        seq: u64,
        store: &ShardedStore,
        catalog: &Catalog,
    ) -> IngestStats {
        let durable = self.committer.durable_lsn();
        let mut batch = Vec::new();
        let mut next = seq;
        while batch.len() < MAX_COMBINE {
            match ts.items.get_mut(&next) {
                Some(item) if item.lsn <= durable && item.work.is_some() => {
                    batch.push((next, item.work.take().expect("work present")));
                    next += 1;
                }
                _ => break,
            }
        }
        drop(ts);
        // `seq` itself is always batchable: its sync returned `Ok`, so
        // its LSN is durable, and only the owner ever takes its work.
        debug_assert!(!batch.is_empty(), "combiner's own commit must be in the batch");
        pse_obs::observe("serve.apply_batch", batch.len() as u64);
        let mut updates = Vec::new();
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        let mut results = Vec::with_capacity(batch.len());
        for (s, work) in batch {
            let (write, shard_updates) = match work {
                ApplyWork::Ingest(reconciled) => {
                    store.ingest_reconciled_unpublished(catalog, reconciled)
                }
                ApplyWork::Retract(ids) => store.retract_unpublished(catalog, &ids),
            };
            dirty.extend(write.dirty_shards);
            updates.extend(shard_updates);
            results.push((s, write.stats));
        }
        store.publish_updates(updates);
        if !dirty.is_empty() {
            let mut dur = self.durability.lock().expect("durability lock");
            dur.mark_dirty(dirty);
        }
        let mut my_stats = None;
        let mut wake = Vec::new();
        let mut ts = self.turnstile.lock().expect("apply turnstile");
        for (s, stats) in results {
            debug_assert_eq!(ts.applied, s - 1, "combined applies advance in sequence order");
            ts.applied = s;
            if s == seq {
                ts.items.remove(&s);
                my_stats = Some(stats);
            } else {
                if let Some(item) = ts.items.get_mut(&s) {
                    item.done = Some(stats);
                }
                wake.extend(ts.waiting.remove(&s));
            }
        }
        // The next-in-line commit could not be batched (not yet queued,
        // or its group's sync still in flight); if its owner parked in
        // the meantime, hand it the turn.
        let next_seq = ts.applied + 1;
        wake.extend(ts.waiting.remove(&next_seq));
        drop(ts);
        for thread in wake {
            thread.unpark();
        }
        my_stats.expect("combiner's own commit was applied")
    }

    /// Complete a failed commit without applying it: once every
    /// predecessor finished, advance the turnstile past `seq` and wake
    /// the successor, so later commits — which must all fail the same
    /// poisoned sync — drain instead of hanging on a slot that will
    /// never turn.
    fn abandon(&self, seq: u64) {
        loop {
            let mut ts = self.turnstile.lock().expect("apply turnstile");
            if ts.applied == seq - 1 {
                ts.items.remove(&seq);
                ts.waiting.remove(&seq);
                ts.applied = seq;
                let next = ts.waiting.remove(&(seq + 1));
                drop(ts);
                if let Some(thread) = next {
                    thread.unpark();
                }
                return;
            }
            ts.waiting.insert(seq, std::thread::current());
            drop(ts);
            std::thread::park();
        }
    }
}

/// Open the durable state under `dcfg`, preferring disk over `seed`:
/// when the directory holds a previous incarnation's segments or WAL,
/// the recovered store wins and `seed` is dropped; a fresh directory
/// keeps `seed` and immediately writes a full snapshot of it, so
/// pre-loaded state survives a crash before the first ingest. A WAL
/// tail that had to be replayed is folded into fresh segments right
/// away, keeping startup state and disk state in lockstep.
pub fn open_durable(
    dcfg: DurabilityConfig,
    catalog: &Catalog,
    seed: ShardedStore,
) -> Result<(ShardedStore, DurableCtx, RecoveryStats), ServeError> {
    let n_shards = seed.n_shards();
    let empty = || ProductStore::with_config(seed.correspondences().clone(), seed.config().clone());
    let (recovered, dur, stats) = Durability::open(dcfg, catalog, empty)?;
    let store = match recovered {
        Some(disk) => ShardedStore::from_store(disk, n_shards),
        None => seed,
    };
    let fold_now = dur.needs_initial_snapshot() || stats.wal_records_replayed > 0;
    let ctx = DurableCtx::new(dur);
    if fold_now {
        durable_snapshot(&store, &ctx)?;
    }
    Ok((store, ctx, stats))
}

/// Ingest a batch durably: reconcile once (outside every lock), stage
/// the *reconciled* offers into the WAL (replay needs no
/// `SpecProvider`), wait for the group fsync, then apply to the shards
/// in sequence order and mark the touched segments dirty.
pub fn durable_ingest<P: SpecProvider>(
    store: &ShardedStore,
    ctx: &DurableCtx,
    catalog: &Catalog,
    offers: &[Offer],
    provider: &P,
) -> Result<IngestStats, ServeError> {
    let _span = pse_obs::span("store.ingest");
    pse_obs::add("store.ingest", offers.len() as u64);
    let _writer = ctx.committer.writer();
    let reconciled = store.reconcile(offers, provider);
    let record = WalRecord::Ingest(reconciled);
    // Encode outside the durability lock: staging under the lock is the
    // write path's only serialized section, so it must stay at "append
    // the frame", not "serialize the batch".
    let payload = record.payload();
    let WalRecord::Ingest(reconciled) = record else { unreachable!() };
    let _gate = ctx.gate.read().expect("snapshot gate");
    let (lsn, seq) = {
        let mut dur = ctx.durability.lock().expect("durability lock");
        let lsn = dur.stage_payload(&payload)?;
        (lsn, ctx.seq.fetch_add(1, Ordering::Relaxed) + 1)
    };
    ctx.enqueue(seq, lsn, ApplyWork::Ingest(reconciled));
    match ctx.committer.wait_durable(lsn) {
        Ok(()) => {
            let mut stats = ctx.complete(seq, store, catalog);
            stats.offers_in = offers.len();
            Ok(stats)
        }
        Err(e) => {
            ctx.abandon(seq);
            Err(e.into())
        }
    }
}

/// Retract offers durably: stage, wait for the group fsync, apply in
/// sequence order, mark dirty.
pub fn durable_retract(
    store: &ShardedStore,
    ctx: &DurableCtx,
    catalog: &Catalog,
    ids: &[OfferId],
) -> Result<IngestStats, ServeError> {
    let _writer = ctx.committer.writer();
    let record = WalRecord::Retract(ids.to_vec());
    let payload = record.payload();
    let _gate = ctx.gate.read().expect("snapshot gate");
    let (lsn, seq) = {
        let mut dur = ctx.durability.lock().expect("durability lock");
        let lsn = dur.stage_payload(&payload)?;
        (lsn, ctx.seq.fetch_add(1, Ordering::Relaxed) + 1)
    };
    ctx.enqueue(seq, lsn, ApplyWork::Retract(ids.to_vec()));
    match ctx.committer.wait_durable(lsn) {
        Ok(()) => {
            let mut stats = ctx.complete(seq, store, catalog);
            stats.offers_in = ids.len();
            Ok(stats)
        }
        Err(e) => {
            ctx.abandon(seq);
            Err(e.into())
        }
    }
}

/// The pre-group-commit write path: log (one fsync per record) and
/// apply while holding the durability mutex, serializing commits end to
/// end. Kept as the measured baseline for `experiments ingest-bench`;
/// the serving layer itself always uses [`durable_ingest`]. Do not mix
/// the two on one `DurableCtx` — this path bypasses the apply
/// turnstile, so interleaving it with pipelined commits would let apply
/// order drift from log order.
pub fn durable_ingest_serial<P: SpecProvider>(
    store: &ShardedStore,
    ctx: &DurableCtx,
    catalog: &Catalog,
    offers: &[Offer],
    provider: &P,
) -> Result<IngestStats, ServeError> {
    let _span = pse_obs::span("store.ingest");
    pse_obs::add("store.ingest", offers.len() as u64);
    let reconciled = store.reconcile(offers, provider);
    let _gate = ctx.gate.read().expect("snapshot gate");
    let mut dur = ctx.durability.lock().expect("durability lock");
    let record = WalRecord::Ingest(reconciled);
    dur.log(&record)?;
    let WalRecord::Ingest(reconciled) = record else { unreachable!() };
    let write = store.ingest_reconciled(catalog, reconciled);
    dur.mark_dirty(write.dirty_shards);
    let mut stats = write.stats;
    stats.offers_in = offers.len();
    Ok(stats)
}

/// Fold the WAL into segments: write an incremental snapshot (dirty
/// shards only) and rotate the log. Takes the snapshot gate for write
/// first — excluding every in-flight commit, so the fold captures
/// exactly the applied-and-durable state — then the durability mutex.
pub fn durable_snapshot(
    store: &ShardedStore,
    ctx: &DurableCtx,
) -> Result<SnapshotStats, ServeError> {
    let _gate = ctx.gate.write().expect("snapshot gate");
    let mut dur = ctx.durability.lock().expect("durability lock");
    Ok(dur.write_snapshot(store.n_shards(), store.config(), store.correspondences(), |i| {
        store.shard_clusters_value(i)
    })?)
}
