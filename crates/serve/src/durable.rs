//! The durable write path: `pse-wal` glued to [`ShardedStore`].
//!
//! Every mutation goes log-then-apply under one [`Mutex<Durability>`]:
//! the WAL append (which fsyncs) happens while the mutex is held, and
//! the in-memory apply happens before it is released — so the log order
//! equals the apply order, and a record is on disk before its effects
//! are visible to readers. The same mutex serializes snapshots, which
//! therefore capture exactly the state produced by the records logged
//! so far (never a half-logged batch).
//!
//! Lock order is always durability mutex → shard locks, never the
//! inverse, so the write path cannot deadlock against compaction.

use std::sync::Mutex;

use pse_core::{Catalog, Offer, OfferId};
use pse_store::{IngestStats, ProductStore};
use pse_synthesis::SpecProvider;
use pse_wal::{Durability, DurabilityConfig, RecoveryStats, SnapshotStats, WalRecord};

use crate::error::ServeError;
use crate::shard::ShardedStore;

/// Open the durable state under `dcfg`, preferring disk over `seed`:
/// when the directory holds a previous incarnation's segments or WAL,
/// the recovered store wins and `seed` is dropped; a fresh directory
/// keeps `seed` and immediately writes a full snapshot of it, so
/// pre-loaded state survives a crash before the first ingest. A WAL
/// tail that had to be replayed is folded into fresh segments right
/// away, keeping startup state and disk state in lockstep.
pub fn open_durable(
    dcfg: DurabilityConfig,
    catalog: &Catalog,
    seed: ShardedStore,
) -> Result<(ShardedStore, Durability, RecoveryStats), ServeError> {
    let n_shards = seed.n_shards();
    let empty = || ProductStore::with_config(seed.correspondences().clone(), seed.config().clone());
    let (recovered, mut dur, stats) = Durability::open(dcfg, catalog, empty)?;
    let store = match recovered {
        Some(disk) => ShardedStore::from_store(disk, n_shards),
        None => seed,
    };
    if dur.needs_initial_snapshot() || stats.wal_records_replayed > 0 {
        durable_snapshot(&store, &mut dur)?;
    }
    Ok((store, dur, stats))
}

/// Ingest a batch durably: reconcile once, log the *reconciled* offers
/// (replay needs no `SpecProvider`), fsync, then apply to the shards and
/// mark the touched segments dirty.
pub fn durable_ingest<P: SpecProvider>(
    store: &ShardedStore,
    durability: &Mutex<Durability>,
    catalog: &Catalog,
    offers: &[Offer],
    provider: &P,
) -> Result<IngestStats, ServeError> {
    let _span = pse_obs::span("store.ingest");
    pse_obs::add("store.ingest", offers.len() as u64);
    let reconciled = store.reconcile(offers, provider);
    let mut dur = durability.lock().expect("durability lock");
    let record = WalRecord::Ingest(reconciled);
    dur.log(&record)?;
    let WalRecord::Ingest(reconciled) = record else { unreachable!() };
    let write = store.ingest_reconciled(catalog, reconciled);
    dur.mark_dirty(write.dirty_shards);
    let mut stats = write.stats;
    stats.offers_in = offers.len();
    Ok(stats)
}

/// Retract offers durably: log, fsync, apply, mark dirty.
pub fn durable_retract(
    store: &ShardedStore,
    durability: &Mutex<Durability>,
    catalog: &Catalog,
    ids: &[OfferId],
) -> Result<IngestStats, ServeError> {
    let mut dur = durability.lock().expect("durability lock");
    dur.log(&WalRecord::Retract(ids.to_vec()))?;
    let write = store.retract_write(catalog, ids);
    dur.mark_dirty(write.dirty_shards);
    let mut stats = write.stats;
    stats.offers_in = ids.len();
    Ok(stats)
}

/// Fold the WAL into segments: write an incremental snapshot (dirty
/// shards only) and rotate the log. The caller must hold no shard locks
/// and have exclusive access to `dur` — the compaction thread and
/// shutdown both call this with the durability mutex held (or owned),
/// which keeps new writes out until the fold commits.
pub fn durable_snapshot(
    store: &ShardedStore,
    dur: &mut Durability,
) -> Result<SnapshotStats, ServeError> {
    Ok(dur.write_snapshot(store.n_shards(), store.config(), store.correspondences(), |i| {
        store.shard_clusters_value(i)
    })?)
}
