//! Minimal curl stand-in for smokes and CI: `http_get METHOD URL [BODY]`.
//!
//! `BODY` of `@path` reads the body from a file. Prints the response body
//! to stdout; exits 0 on 2xx, 3 otherwise, 2 on usage/transport errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (method, url, body_arg) = match args.as_slice() {
        [method, url] => (method.as_str(), url.as_str(), None),
        [method, url, body] => (method.as_str(), url.as_str(), Some(body.as_str())),
        _ => {
            eprintln!("usage: http_get METHOD http://host:port/path [BODY|@bodyfile]");
            return ExitCode::from(2);
        }
    };
    let Some((addr, path)) = split_url(url) else {
        eprintln!("http_get: cannot parse url {url:?} (expected http://host:port/path)");
        return ExitCode::from(2);
    };
    let body = match body_arg {
        Some(spec) if spec.starts_with('@') => match std::fs::read_to_string(&spec[1..]) {
            Ok(contents) => Some(contents),
            Err(e) => {
                eprintln!("http_get: cannot read body file {}: {e}", &spec[1..]);
                return ExitCode::from(2);
            }
        },
        Some(inline) => Some(inline.to_string()),
        None => None,
    };
    match pse_serve::http_request(&addr, method, &path, body.as_deref()) {
        Ok((status, response_body)) => {
            print!("{response_body}");
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("http_get: {method} {url} -> {status}");
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("http_get: {method} {url} failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn split_url(url: &str) -> Option<(String, String)> {
    let rest = url.strip_prefix("http://")?;
    let (addr, path) = match rest.split_once('/') {
        Some((addr, path)) => (addr, format!("/{path}")),
        None => (rest, "/".to_string()),
    };
    if addr.is_empty() {
        return None;
    }
    Some((addr.to_string(), path))
}
