//! A minimal HTTP/1.1 subset on blocking sockets: enough to parse one
//! request per connection (`Connection: close` semantics) and write one
//! response. No external dependencies, no chunked encoding, no keep-alive
//! — every malformed input becomes a typed error the server maps to a 4xx
//! instead of a worker panic.

use std::io::{Read, Write};
use std::sync::Arc;

use crate::error::ServeError;

/// A response body: bytes a handler built for this request, or a shared
/// pre-serialized buffer from the snapshot response cache — either way
/// written to the socket without copying.
#[derive(Debug, Clone)]
pub enum Body {
    /// Handler-owned bytes.
    Owned(Vec<u8>),
    /// A shared cache buffer (`Arc` clone, no copy).
    Shared(Arc<[u8]>),
    /// A shared cached JSON string (`Arc` clone, no copy) — the
    /// snapshot's per-product serialization.
    SharedStr(Arc<str>),
}

impl AsRef<[u8]> for Body {
    fn as_ref(&self) -> &[u8] {
        match self {
            Self::Owned(v) => v,
            Self::Shared(b) => b,
            Self::SharedStr(s) => s.as_bytes(),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Self {
        Self::Owned(v)
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(b: Arc<[u8]>) -> Self {
        Self::Shared(b)
    }
}

impl From<Arc<str>> for Body {
    fn from(s: Arc<str>) -> Self {
        Self::SharedStr(s)
    }
}

impl From<&[u8]> for Body {
    fn from(b: &[u8]) -> Self {
        Self::Owned(b.to_vec())
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client, not normalized here).
    pub method: String,
    /// Path without the query string, percent-decoded per segment? No —
    /// kept verbatim; cluster keys are normalized alphanumerics, so the
    /// router only percent-decodes query values.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs in wire order, names verbatim,
    /// values trimmed. Look up with [`Request::header`].
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header value for `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Read one request from the stream, enforcing `max_bytes` over header +
/// body. Returns `RequestTooLarge` past the cap and `BadRequest` for
/// anything that does not parse.
pub fn read_request(stream: &mut impl Read, max_bytes: usize) -> Result<Request, ServeError> {
    // Read until the blank line ending the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > max_bytes {
            return Err(ServeError::RequestTooLarge { got: buf.len(), cap: max_bytes });
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::BadRequest("connection closed mid-header".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header_text = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ServeError::BadRequest("header block is not UTF-8".into()))?
        .to_string();
    let mut lines = header_text.split("\r\n");
    let request_line =
        lines.next().ok_or_else(|| ServeError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ServeError::BadRequest("missing method".into()))?
        .to_string();
    let target =
        parts.next().ok_or_else(|| ServeError::BadRequest("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ServeError::BadRequest("missing or unsupported HTTP version".into())),
    }

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest(format!("malformed header line {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| ServeError::BadRequest("unparseable Content-Length".into()))?;
            // RFC 7230 §3.3.2: duplicates carrying the same value may be
            // accepted as that value; differing values make the message
            // length ambiguous (request-smuggling vector) and MUST be
            // rejected. The old code let the last duplicate win.
            match content_length {
                None => content_length = Some(parsed),
                Some(previous) if previous == parsed => {}
                Some(previous) => {
                    return Err(ServeError::BadRequest(format!(
                        "conflicting Content-Length headers: {previous} then {parsed}"
                    )));
                }
            }
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let content_length = content_length.unwrap_or(0);

    let body_start = header_end + 4; // past "\r\n\r\n"
    if body_start.saturating_add(content_length) > max_bytes {
        return Err(ServeError::RequestTooLarge {
            got: body_start + content_length,
            cap: max_bytes,
        });
    }
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(Request { method, path, query, headers, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decode a query string into pairs; `+` becomes space, `%XX` is decoded,
/// undecodable sequences are kept verbatim.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(c @ b'0'..=b'9') => Some(c - b'0'),
        Some(c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one `Connection: close` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Result<Request, ServeError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), 4096)
    }

    #[test]
    fn parses_get_with_query() {
        let r = req(b"GET /product?category=3&attr=MPN&key=abc%20123 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/product");
        assert_eq!(r.query_param("category"), Some("3"));
        assert_eq!(r.query_param("key"), Some("abc 123"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let r =
            req(b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pse-Trace-Id:  00ff  \r\n\r\n").unwrap();
        assert_eq!(r.header("x-pse-trace-id"), Some("00ff"), "trimmed, any case");
        assert_eq!(r.header("X-PSE-TRACE-ID"), Some("00ff"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("absent"), None);
    }

    #[test]
    fn parses_post_with_body() {
        let r = req(b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(req(b"\r\n\r\n"), Err(ServeError::BadRequest(_))));
        assert!(matches!(req(b"GET /x\r\n\r\n"), Err(ServeError::BadRequest(_))));
        assert!(matches!(req(b"GET /x SPDY/9\r\n\r\n"), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn duplicate_content_length_same_value_is_accepted() {
        let r = req(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn conflicting_content_length_is_rejected() {
        let err = req(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!")
            .unwrap_err();
        let ServeError::BadRequest(msg) = err else { panic!("want BadRequest, got {err:?}") };
        assert!(msg.contains("conflicting Content-Length"), "{msg}");
        // Case-insensitive and order-independent: the larger value first
        // must not win either (the old last-wins bug read 5 here and
        // left a stray byte on the wire).
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\ncontent-length: 6\r\nCONTENT-LENGTH: 5\r\n\r\nhello!"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn empty_content_length_is_rejected() {
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length:\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            req(b"POST /x HTTP/1.1\r\nContent-Length:   \r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn body_over_cap_is_too_large() {
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 10000\r\n\r\n";
        let err = read_request(&mut std::io::Cursor::new(raw.to_vec()), 256).unwrap_err();
        assert!(matches!(err, ServeError::RequestTooLarge { .. }));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a+b%2Fc"), "a b/c");
        assert_eq!(percent_decode("100%"), "100%", "trailing percent kept verbatim");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex kept verbatim");
    }

    #[test]
    fn response_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
