//! Typed errors for the serving layer.

use pse_store::StoreError;
use pse_wal::WalError;

/// Why a serve-layer operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The client sent something that is not a well-formed HTTP/1.1
    /// request, or a body that is not valid JSON for the endpoint.
    BadRequest(String),
    /// The request body exceeded the configured size cap.
    RequestTooLarge {
        /// Bytes the client tried to send (as far as we read).
        got: usize,
        /// The configured cap.
        cap: usize,
    },
    /// An underlying store operation failed (snapshot restore, …).
    Store(StoreError),
    /// The server did not respond with a parseable HTTP status line.
    BadResponse(String),
    /// The durability layer failed (WAL append, snapshot write, recovery).
    Durability(WalError),
}

impl ServeError {
    /// The stable machine-readable code the JSON error envelope carries
    /// for this error. Codes are part of the wire contract (pinned by
    /// the socket tests): renaming one is an API break.
    pub fn code(&self) -> &'static str {
        match self {
            Self::Io(_) => "io_error",
            Self::BadRequest(_) => "bad_request",
            Self::RequestTooLarge { .. } => "request_too_large",
            Self::Store(e) => store_error_code(e),
            Self::BadResponse(_) => "bad_response",
            Self::Durability(_) => "durability_failed",
        }
    }
}

/// The stable envelope code for a store-layer failure.
pub fn store_error_code(e: &StoreError) -> &'static str {
    match e {
        StoreError::Json(_) => "store_bad_json",
        StoreError::UnsupportedVersion { .. } => "store_unsupported_version",
        StoreError::CorruptSnapshot(_) => "store_corrupt_snapshot",
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::RequestTooLarge { got, cap } => {
                write!(f, "request too large: {got} bytes exceeds cap of {cap}")
            }
            Self::Store(e) => write!(f, "store error: {e}"),
            Self::BadResponse(msg) => write!(f, "bad response: {msg}"),
            Self::Durability(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        Self::Durability(e)
    }
}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}
