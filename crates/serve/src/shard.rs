//! A sharded front over [`ProductStore`] with an MVCC read path: the
//! cluster map partitioned by FNV-1a hash of the cluster key, writers
//! serialized per shard, readers served from immutable published
//! snapshots ([`StoreSnapshot`]).
//!
//! # Write path: build aside, publish with one swap
//!
//! An ingest batch is reconciled once, partitioned by cluster key, and
//! applied to the touched shards in parallel (`pse-par`). Each shard
//! task, under that shard's writer lock, applies the store mutation,
//! takes a fresh version number, and builds the successor
//! [`ShardSnapshot`] from the previous one — carrying untouched entries
//! forward by `Arc` clone and re-serializing exactly the dirty-cluster
//! delta the store reports. When every task is done, one publish step
//! (serialized by a publish lock) splices the new shard snapshots into
//! the published [`StoreSnapshot`], rebuilds the response bodies of
//! exactly the categories whose entries changed (pointer diff), and
//! installs the whole thing with a single pointer swap.
//!
//! # Read path: no locks held, no serializer run
//!
//! Readers load the published snapshot (one refcount increment via
//! [`SnapshotCell`]) and then operate on immutable data: `products()`,
//! `products_in_category()`, and `product_for()` see one consistent
//! point in time, and [`ShardedStore::products_response`] answers the
//! hot `GET /products/{category}` with pre-serialized shared bytes. A
//! multi-shard batch becomes visible all at once or not at all — the
//! torn cross-shard read the old sequential-lock read path allowed is
//! impossible by construction (pinned by
//! `concurrent_reader_never_observes_partial_batch`).
//!
//! # Equivalence to the single store
//!
//! Every observable output is byte-identical to one [`ProductStore`] fed
//! the same stream:
//!
//! - an offer's cluster key is a pure function of the offer (shared
//!   [`KeyAttributes::route`]), and the shard is a pure function of the
//!   key, so sharding never changes cluster contents or member order;
//! - reads merge shard outputs back into cluster-key order, which is the
//!   single store's `BTreeMap` iteration order, and cached response
//!   bodies join per-product JSON exactly as the serializer would;
//! - [`ShardedStore::snapshot_json`] merges the disjoint shards into one
//!   `ProductStore` before serializing, so the snapshot is the *same
//!   bytes* regardless of shard count — a 4-shard server can restore an
//!   8-shard snapshot and vice versa.
//!
//! The property is pinned by proptests in `tests/sharded_equivalence.rs`
//! over arbitrary ingest/retract interleavings at 1/2/4/8 shards.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use pse_core::{Catalog, CategoryId, CorrespondenceSet, Offer, OfferId};
use pse_store::{ClusterKey, IngestStats, ProductStore, StoreError};
use pse_synthesis::runtime::{reconcile_batch, KeyAttributes};
use pse_synthesis::{ReconciledOffer, RuntimeConfig, SpecProvider, SynthesizedProduct};

use crate::snapshot::{
    changed_categories, empty_response, ResponseSlot, SearchSlot, ShardSnapshot, SnapshotCell,
    StoreSnapshot,
};

/// 64-bit FNV-1a over a byte stream.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Which of `n_shards` shards a cluster key lives in: FNV-1a over
/// `(category, key attribute, normalized key value)` with `0xff`
/// separators (no field concatenation can collide across boundaries,
/// since the hashed strings never contain `0xff` after normalization).
/// One shard's write result: its delta stats plus, when the shard's
/// snapshot changed, the replacement to publish as `(shard index, snapshot)`.
type ShardWrite = (IngestStats, Option<ShardUpdate>);

/// A replacement snapshot for one shard, ready to publish.
pub(crate) type ShardUpdate = (usize, Arc<ShardSnapshot>);

/// A completed sharded write: the merged batch stats plus the indices of
/// the shards the batch actually changed — the incremental-snapshot
/// layer (`pse-wal`) marks exactly these segments dirty.
pub struct ShardedWrite {
    /// Merged per-shard ingest/retract stats.
    pub stats: IngestStats,
    /// Shards whose cluster state changed (sorted, deduplicated).
    pub dirty_shards: Vec<usize>,
}

/// One answered search: the ranked result plus, index-aligned with
/// `result.hits`, each hit's pre-serialized product JSON from the same
/// snapshot the index was built on.
pub struct SearchOutcome {
    /// The engine's ranked result (constraints echoed, hits ordered).
    pub result: pse_query::SearchResult,
    /// `hits[i]`'s cached product JSON.
    pub hit_json: Vec<Arc<str>>,
}
pub fn shard_of(key: &ClusterKey, n_shards: usize) -> usize {
    let mut h = fnv1a(FNV_OFFSET, &key.0 .0.to_le_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, key.1.as_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, key.2.as_bytes());
    (h % n_shards.max(1) as u64) as usize
}

/// One shard's writer state: the mutable store plus the latest snapshot
/// *built* for this shard (which may be newer than the published one
/// while a publish is pending). Successors are always built from
/// `latest`, never from the published snapshot, so concurrent same-shard
/// writers each carry the other's changes forward.
struct ShardWriter {
    store: ProductStore,
    latest: Arc<ShardSnapshot>,
}

/// A shard-partitioned product store safe to share across server worker
/// threads (`&self` ingest/retract/read). See the module docs for the
/// snapshot protocol and the equivalence guarantee.
pub struct ShardedStore {
    correspondences: CorrespondenceSet,
    config: RuntimeConfig,
    /// Routing table derived from `config.key_attributes`.
    keys: KeyAttributes,
    shards: Vec<RwLock<ShardWriter>>,
    /// The snapshot readers load; replaced wholesale on publish.
    published: SnapshotCell,
    /// Serializes publishers (snapshot *construction* stays parallel).
    publish_lock: Mutex<()>,
    /// Source of per-shard snapshot versions, taken under the shard's
    /// writer lock so versions order consistently with mutations.
    versions: AtomicU64,
}

impl ShardedStore {
    /// Empty sharded store with the default pipeline configuration.
    pub fn new(correspondences: CorrespondenceSet, n_shards: usize) -> Self {
        Self::with_config(correspondences, RuntimeConfig::default(), n_shards)
    }

    /// Empty sharded store with a custom pipeline configuration.
    pub fn with_config(
        correspondences: CorrespondenceSet,
        config: RuntimeConfig,
        n_shards: usize,
    ) -> Self {
        let n = n_shards.max(1);
        let stores = (0..n)
            .map(|_| ProductStore::with_config(correspondences.clone(), config.clone()))
            .collect();
        Self::from_shard_stores(correspondences, config, stores)
    }

    /// Wrap an existing single store, splitting its clusters across
    /// `n_shards` shards.
    pub fn from_store(store: ProductStore, n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let correspondences = store.correspondences().clone();
        let config = store.config().clone();
        let stores = store.split_by(n, |key| shard_of(key, n));
        Self::from_shard_stores(correspondences, config, stores)
    }

    fn from_shard_stores(
        correspondences: CorrespondenceSet,
        config: RuntimeConfig,
        stores: Vec<ProductStore>,
    ) -> Self {
        let keys = KeyAttributes::new(&config.key_attributes);
        let snapshots: Vec<Arc<ShardSnapshot>> = stores
            .iter()
            .enumerate()
            .map(|(i, s)| Arc::new(ShardSnapshot::from_store(i as u64 + 1, s)))
            .collect();
        let categories: BTreeSet<CategoryId> =
            snapshots.iter().flat_map(|s| s.categories.keys().copied()).collect();
        let responses = categories
            .iter()
            .map(|&c| (c, Arc::new(ResponseSlot::default())))
            .collect::<BTreeMap<_, _>>();
        let search = categories.into_iter().map(|c| (c, Arc::new(SearchSlot::default()))).collect();
        let versions = AtomicU64::new(snapshots.len() as u64);
        let shards = stores
            .into_iter()
            .zip(&snapshots)
            .map(|(store, snap)| RwLock::new(ShardWriter { store, latest: Arc::clone(snap) }))
            .collect();
        let published =
            SnapshotCell::new(Arc::new(StoreSnapshot { shards: snapshots, responses, search }));
        Self {
            correspondences,
            config,
            keys,
            shards,
            published,
            publish_lock: Mutex::new(()),
            versions,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The pipeline configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The correspondence set in use.
    pub fn correspondences(&self) -> &CorrespondenceSet {
        &self.correspondences
    }

    /// Offers currently held, summed over shards (writer-side view).
    pub fn offer_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock").store.offer_count()).sum()
    }

    /// Clusters currently held, summed over shards (writer-side view).
    pub fn cluster_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock").store.cluster_count()).sum()
    }

    /// The currently published read snapshot. Every read made through
    /// one snapshot is consistent with every other; requests should load
    /// it once and answer entirely from it.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.published.load()
    }

    /// Ingest a batch: reconcile once (in parallel, order-preserving),
    /// partition the reconciled offers by target shard, apply and build
    /// successor snapshots on the touched shards concurrently, then
    /// publish everything with one pointer swap. Takes `&self`; only the
    /// shards the batch actually hashes to take their writer lock.
    pub fn ingest<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> IngestStats {
        let _span = pse_obs::span("store.ingest");
        pse_obs::add("store.ingest", offers.len() as u64);
        let reconciled = self.reconcile(offers, provider);
        let mut write = self.ingest_reconciled(catalog, reconciled);
        write.stats.offers_in = offers.len();
        write.stats
    }

    /// Reconcile a raw batch against this store's correspondence set
    /// (the first half of [`ShardedStore::ingest`]). The durable write
    /// path reconciles once, logs the reconciled offers to the WAL, and
    /// then applies them via [`ShardedStore::ingest_reconciled`] — so
    /// replay never needs the `SpecProvider`.
    pub fn reconcile<P: SpecProvider>(
        &self,
        offers: &[Offer],
        provider: &P,
    ) -> Vec<ReconciledOffer> {
        reconcile_batch(offers, &self.correspondences, provider)
    }

    /// Apply already-reconciled offers (the second half of
    /// [`ShardedStore::ingest`]): partition by target shard, apply and
    /// build successor snapshots concurrently, publish with one swap.
    /// `stats.offers_in` counts only the offers that routed to a shard;
    /// the offer-level wrapper overwrites it with the raw batch size.
    pub fn ingest_reconciled(
        &self,
        catalog: &Catalog,
        reconciled: Vec<ReconciledOffer>,
    ) -> ShardedWrite {
        let (write, updates) = self.ingest_reconciled_unpublished(catalog, reconciled);
        self.publish_updates(updates);
        write
    }

    /// [`ShardedStore::ingest_reconciled`] minus the publish step: the
    /// shard stores mutate and successor snapshots are built, but nothing
    /// becomes visible to readers until the returned updates go through
    /// [`ShardedStore::publish_updates`]. The durable write path's
    /// combiner applies a whole commit group this way and publishes once.
    pub(crate) fn ingest_reconciled_unpublished(
        &self,
        catalog: &Catalog,
        reconciled: Vec<ReconciledOffer>,
    ) -> (ShardedWrite, Vec<ShardUpdate>) {
        let n = self.shards.len();
        // Route once, count, then drain into exactly-sized buckets — no
        // per-shard Vec growth and no allocation for shards the batch
        // never touches. Offers the router drops here would be dropped
        // identically by any shard; routing again inside the shard is
        // cheap and keeps `ProductStore::ingest_reconciled` the single
        // source of truth.
        let routes: Vec<Option<usize>> = reconciled
            .iter()
            .map(|r| {
                self.keys.route(r).map(|(attr, value)| shard_of(&(r.category, attr, value), n))
            })
            .collect();
        let mut counts = vec![0usize; n];
        for &shard in routes.iter().flatten() {
            counts[shard] += 1;
        }
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        if nonempty <= 1 {
            // Single-shard fast path (small batches at high shard counts
            // land here constantly): apply under the one writer lock
            // directly — no slot wrapping, no parallel dispatch.
            let Some(i) = counts.iter().position(|&c| c > 0) else {
                return self.collect_write(Vec::new());
            };
            let batch: Vec<ReconciledOffer> = reconciled
                .into_iter()
                .zip(&routes)
                .filter_map(|(r, route)| route.map(|_| r))
                .collect();
            let mut writer = self.shards[i].write().expect("shard lock");
            let delta = writer.store.ingest_reconciled_delta(catalog, batch);
            let update = self.rebuild_snapshot(&mut writer, &delta.dirty).map(|s| (i, s));
            drop(writer);
            return self.collect_write(vec![(delta.stats, update)]);
        }
        let mut parts: Vec<Vec<ReconciledOffer>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (r, route) in reconciled.into_iter().zip(&routes) {
            if let Some(i) = route {
                parts[*i].push(r);
            }
        }
        let work: Vec<(usize, Mutex<Option<Vec<ReconciledOffer>>>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, batch)| (i, Mutex::new(Some(batch))))
            .collect();
        let results: Vec<ShardWrite> = pse_par::par_map(&work, |(i, slot)| {
            let batch = slot.lock().expect("batch slot").take().unwrap_or_default();
            let mut writer = self.shards[*i].write().expect("shard lock");
            let delta = writer.store.ingest_reconciled_delta(catalog, batch);
            let update = self.rebuild_snapshot(&mut writer, &delta.dirty).map(|s| (*i, s));
            (delta.stats, update)
        });
        self.collect_write(results)
    }

    /// Remove offers by id, re-fusing affected clusters. Each shard owns
    /// the index for its own offers, so every shard is *probed* — but
    /// only under its cheap reader lock; a shard owning none of the ids
    /// takes no writer lock, mutates nothing, and keeps its published
    /// snapshot pointer-identical.
    pub fn retract(&self, catalog: &Catalog, ids: &[OfferId]) -> IngestStats {
        let mut write = self.retract_write(catalog, ids);
        write.stats.offers_in = ids.len();
        write.stats
    }

    /// [`ShardedStore::retract`] with the changed-shard indices attached
    /// (`stats.offers_in` is left at 0; the wrapper sets it).
    pub fn retract_write(&self, catalog: &Catalog, ids: &[OfferId]) -> ShardedWrite {
        let (write, updates) = self.retract_unpublished(catalog, ids);
        self.publish_updates(updates);
        write
    }

    /// [`ShardedStore::retract_write`] minus the publish step (see
    /// [`ShardedStore::ingest_reconciled_unpublished`]).
    pub(crate) fn retract_unpublished(
        &self,
        catalog: &Catalog,
        ids: &[OfferId],
    ) -> (ShardedWrite, Vec<ShardUpdate>) {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let results: Vec<ShardWrite> = pse_par::par_map(&idx, |&i| {
            if !self.shards[i].read().expect("shard lock").store.owns_any(ids) {
                return (IngestStats::default(), None);
            }
            let mut writer = self.shards[i].write().expect("shard lock");
            let delta = writer.store.retract_delta(catalog, ids);
            let update = self.rebuild_snapshot(&mut writer, &delta.dirty).map(|s| (i, s));
            (delta.stats, update)
        });
        self.collect_write(results)
    }

    /// Merge per-shard results and report which shards changed, leaving
    /// the successor snapshots unpublished for the caller to batch.
    fn collect_write(&self, results: Vec<ShardWrite>) -> (ShardedWrite, Vec<ShardUpdate>) {
        let mut updates = Vec::new();
        let mut total = IngestStats::default();
        for (stats, update) in results {
            total = merge_stats(total, stats);
            updates.extend(update);
        }
        let dirty_shards: Vec<usize> = updates.iter().map(|(i, _)| *i).collect();
        (ShardedWrite { stats: total, dirty_shards }, updates)
    }

    /// Publish a batch of successor snapshots with one pointer swap.
    /// Stale updates (a concurrent writer already published past them)
    /// are skipped inside [`ShardedStore::publish`].
    pub(crate) fn publish_updates(&self, updates: Vec<ShardUpdate>) {
        self.publish(updates);
    }

    /// Build the successor snapshot for one shard under its held writer
    /// lock. Returns `None` when the operation touched nothing (the
    /// snapshot stays pointer-stable).
    fn rebuild_snapshot(
        &self,
        writer: &mut ShardWriter,
        dirty: &[ClusterKey],
    ) -> Option<Arc<ShardSnapshot>> {
        if dirty.is_empty() {
            return None;
        }
        let version = self.versions.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Arc::new(writer.latest.rebuilt(version, &writer.store, dirty));
        writer.latest = Arc::clone(&snap);
        Some(snap)
    }

    /// Splice `updates` into the published snapshot and swap it in.
    /// Serialized by the publish lock; a snapshot older than what is
    /// already live (a concurrent same-shard writer published past us)
    /// is skipped — its changes are already included in the newer one.
    /// Response bodies are rebuilt for exactly the categories whose
    /// entries changed, found by pointer diff, and counted as
    /// `serve.cache.invalidated`.
    fn publish(&self, updates: Vec<(usize, Arc<ShardSnapshot>)>) {
        if updates.is_empty() {
            return;
        }
        let _guard = self.publish_lock.lock().expect("publish lock");
        let current = self.published.load();
        let mut shards = current.shards.clone();
        let mut dirty_categories: BTreeSet<CategoryId> = BTreeSet::new();
        for (i, snap) in updates {
            if snap.version <= shards[i].version {
                continue;
            }
            changed_categories(&shards[i], &snap, &mut dirty_categories);
            shards[i] = snap;
        }
        if dirty_categories.is_empty() {
            return;
        }
        let mut responses = current.responses.clone();
        let mut search = current.search.clone();
        for &category in &dirty_categories {
            // A fresh slot: the next reader of the category assembles
            // the body; untouched categories keep their built slots.
            // The search index invalidates in lockstep.
            responses.insert(category, Arc::new(ResponseSlot::default()));
            search.insert(category, Arc::new(SearchSlot::default()));
        }
        pse_obs::add("serve.cache.invalidated", dirty_categories.len() as u64);
        self.published.swap(Arc::new(StoreSnapshot { shards, responses, search }));
    }

    /// Current products in cluster-key order — the exact sequence the
    /// single store (and `RuntimePipeline::process`) would emit. Reads
    /// one published snapshot; no locks are held while merging.
    pub fn products(&self) -> Vec<SynthesizedProduct> {
        let snap = self.published.load();
        let mut keyed: Vec<(&ClusterKey, &SynthesizedProduct)> =
            snap.shards.iter().flat_map(|s| s.entries().map(|(k, e)| (k, &e.product))).collect();
        keyed.sort_by(|a, b| a.0.cmp(b.0));
        keyed.into_iter().map(|(_, p)| p.clone()).collect()
    }

    /// Products of one category, in cluster-key order, from one
    /// published snapshot.
    pub fn products_in_category(&self, category: CategoryId) -> Vec<SynthesizedProduct> {
        let snap = self.published.load();
        let mut keyed: Vec<(&ClusterKey, &SynthesizedProduct)> = snap
            .shards
            .iter()
            .flat_map(|s| s.category_entries(category).map(|(k, e)| (k, &e.product)))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(b.0));
        keyed.into_iter().map(|(_, p)| p.clone()).collect()
    }

    /// The `GET /products/{category}` body: an atomic snapshot load
    /// plus a map lookup when the body is already assembled; the first
    /// read after a publish touched the category assembles it (counted
    /// as a miss). Byte-identical to
    /// `serde_json::to_string(&products_in_category)`.
    pub fn products_response(&self, category: CategoryId) -> Arc<[u8]> {
        let snap = self.published.load();
        match snap.responses.get(&category) {
            Some(slot) => match slot.built() {
                Some(body) => {
                    pse_obs::incr("serve.cache.hit");
                    Arc::clone(body)
                }
                None => {
                    pse_obs::incr("serve.cache.miss");
                    slot.get_or_build(&snap.shards, category)
                }
            },
            None => {
                pse_obs::incr("serve.cache.miss");
                empty_response()
            }
        }
    }

    /// The product for one cluster key, from one published snapshot.
    pub fn product_for(&self, key: &ClusterKey) -> Option<SynthesizedProduct> {
        let snap = self.published.load();
        let shard = &snap.shards[shard_of(key, snap.shards.len())];
        shard.entry(key).map(|e| e.product.clone())
    }

    /// The pre-serialized `GET /product?...` body for one cluster key:
    /// the snapshot's cached per-product JSON — no lock, no serializer.
    /// Byte-identical to `serde_json::to_string(&product_for(key))`.
    pub fn product_response(&self, key: &ClusterKey) -> Option<Arc<str>> {
        let snap = self.published.load();
        let shard = &snap.shards[shard_of(key, snap.shards.len())];
        shard.entry(key).map(|e| Arc::clone(&e.json))
    }

    /// Answer a free-text query from one published snapshot: resolve it
    /// into constraints with `pse-query`, retrieve and rank through the
    /// snapshot's per-category indexes (built lazily, cached until the
    /// category's next publish), and attach each hit's cached product
    /// JSON. No shard lock, no serializer — and because every index is
    /// built from the merged entries in cluster-key order, the outcome
    /// is byte-identical at any shard count.
    pub fn search(&self, query: &str, k: usize) -> SearchOutcome {
        let snap = self.published.load();
        let index: pse_query::SearchIndex = snap
            .search
            .iter()
            .map(|(&c, slot)| (c, slot.get_or_build(&snap.shards, c, &self.correspondences)))
            .collect();
        let result = pse_query::search(&index, query, k);
        let hit_json = result
            .hits
            .iter()
            .map(|h| {
                let key = (h.category, h.key_attribute.clone(), h.key_value.clone());
                let shard = &snap.shards[shard_of(&key, snap.shards.len())];
                // Hits come from the same snapshot, so the entry exists;
                // "null" keeps the response well-formed regardless.
                shard.entry(&key).map(|e| Arc::clone(&e.json)).unwrap_or_else(|| Arc::from("null"))
            })
            .collect();
        SearchOutcome { result, hit_json }
    }

    /// Merge the shards into one store and snapshot it — byte-identical
    /// to the snapshot of a single [`ProductStore`] fed the same stream,
    /// whatever the shard count.
    pub fn snapshot_json(&self) -> String {
        self.to_store().snapshot_json()
    }

    /// Rebuild from a snapshot (either a single store's or a sharded
    /// store's — they are the same format), splitting into `n_shards`.
    pub fn restore_json(json: &str, n_shards: usize) -> Result<Self, StoreError> {
        Ok(Self::from_store(ProductStore::restore_json(json)?, n_shards))
    }

    /// Collapse into one single-threaded store (cluster state moves, no
    /// re-fusion). Reads the writer-side stores shard by shard; callers
    /// should quiesce writers first (the server does this on shutdown).
    pub fn to_store(&self) -> ProductStore {
        let mut merged =
            ProductStore::with_config(self.correspondences.clone(), self.config.clone());
        for shard in &self.shards {
            merged.absorb(shard.read().expect("shard lock").store.clone());
        }
        merged
    }

    /// One shard's cluster map as a serialization-ready [`Value`] — the
    /// payload of that shard's binary snapshot segment. Reads the
    /// writer-side store under the shard's reader lock.
    pub fn shard_clusters_value(&self, shard: usize) -> serde::Value {
        self.shards[shard].read().expect("shard lock").store.clusters_value()
    }

    /// Offer counts per shard (balance diagnostics; `/metrics` extra).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().expect("shard lock").store.offer_count()).collect()
    }
}

fn merge_stats(mut acc: IngestStats, s: IngestStats) -> IngestStats {
    acc.offers_in += s.offers_in;
    acc.offers_routed += s.offers_routed;
    acc.clusters_dirty += s.clusters_dirty;
    acc.refused += s.refused;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let key = (CategoryId(3), "MPN".to_string(), "abc123".to_string());
        for n in 1..=8 {
            let s = shard_of(&key, n);
            assert!(s < n);
            assert_eq!(s, shard_of(&key, n), "deterministic");
        }
        assert_eq!(shard_of(&key, 1), 0);
    }

    #[test]
    fn shard_of_separates_field_boundaries() {
        // ("ab", "c") and ("a", "bc") must not collide by construction.
        let a = (CategoryId(0), "ab".to_string(), "c".to_string());
        let b = (CategoryId(0), "a".to_string(), "bc".to_string());
        let ha = (0..64).map(|n| shard_of(&a, n + 1)).collect::<Vec<_>>();
        let hb = (0..64).map(|n| shard_of(&b, n + 1)).collect::<Vec<_>>();
        assert_ne!(ha, hb);
    }
}
