//! A sharded front over [`ProductStore`]: the cluster map partitioned by
//! FNV-1a hash of the cluster key, each shard behind its own `RwLock`.
//!
//! Concurrent readers of different products never contend (shared read
//! locks, usually on different shards), and an ingest batch takes the
//! write lock of only the shards its clusters hash to — shards re-fuse in
//! parallel via `pse-par`.
//!
//! # Equivalence to the single store
//!
//! Every observable output is byte-identical to one [`ProductStore`] fed
//! the same stream:
//!
//! - an offer's cluster key is a pure function of the offer (shared
//!   [`KeyAttributes::route`]), and the shard is a pure function of the
//!   key, so sharding never changes cluster contents or member order;
//! - reads merge shard outputs back into cluster-key order, which is the
//!   single store's `BTreeMap` iteration order;
//! - [`ShardedStore::snapshot_json`] merges the disjoint shards into one
//!   `ProductStore` before serializing, so the snapshot is the *same
//!   bytes* regardless of shard count — a 4-shard server can restore an
//!   8-shard snapshot and vice versa.
//!
//! The property is pinned by proptests in `tests/sharded_equivalence.rs`
//! over arbitrary ingest/retract interleavings at 1/2/4/8 shards.

use std::sync::{Mutex, RwLock};

use pse_core::{Catalog, CategoryId, CorrespondenceSet, Offer, OfferId};
use pse_store::{ClusterKey, IngestStats, ProductStore, StoreError};
use pse_synthesis::runtime::{reconcile_batch, KeyAttributes};
use pse_synthesis::{ReconciledOffer, RuntimeConfig, SpecProvider, SynthesizedProduct};

/// 64-bit FNV-1a over a byte stream.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Which of `n_shards` shards a cluster key lives in: FNV-1a over
/// `(category, key attribute, normalized key value)` with `0xff`
/// separators (no field concatenation can collide across boundaries,
/// since the hashed strings never contain `0xff` after normalization).
pub fn shard_of(key: &ClusterKey, n_shards: usize) -> usize {
    let mut h = fnv1a(FNV_OFFSET, &key.0 .0.to_le_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, key.1.as_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, key.2.as_bytes());
    (h % n_shards.max(1) as u64) as usize
}

/// A shard-partitioned product store safe to share across server worker
/// threads (`&self` ingest/retract/read). See the module docs for the
/// equivalence guarantee.
pub struct ShardedStore {
    correspondences: CorrespondenceSet,
    config: RuntimeConfig,
    /// Routing table derived from `config.key_attributes`.
    keys: KeyAttributes,
    shards: Vec<RwLock<ProductStore>>,
}

impl ShardedStore {
    /// Empty sharded store with the default pipeline configuration.
    pub fn new(correspondences: CorrespondenceSet, n_shards: usize) -> Self {
        Self::with_config(correspondences, RuntimeConfig::default(), n_shards)
    }

    /// Empty sharded store with a custom pipeline configuration.
    pub fn with_config(
        correspondences: CorrespondenceSet,
        config: RuntimeConfig,
        n_shards: usize,
    ) -> Self {
        let n = n_shards.max(1);
        let keys = KeyAttributes::new(&config.key_attributes);
        let shards = (0..n)
            .map(|_| {
                RwLock::new(ProductStore::with_config(correspondences.clone(), config.clone()))
            })
            .collect();
        Self { correspondences, config, keys, shards }
    }

    /// Wrap an existing single store, splitting its clusters across
    /// `n_shards` shards.
    pub fn from_store(store: ProductStore, n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let correspondences = store.correspondences().clone();
        let config = store.config().clone();
        let keys = KeyAttributes::new(&config.key_attributes);
        let shards =
            store.split_by(n, |key| shard_of(key, n)).into_iter().map(RwLock::new).collect();
        Self { correspondences, config, keys, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The pipeline configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The correspondence set in use.
    pub fn correspondences(&self) -> &CorrespondenceSet {
        &self.correspondences
    }

    /// Offers currently held, summed over shards.
    pub fn offer_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock").offer_count()).sum()
    }

    /// Clusters currently held, summed over shards.
    pub fn cluster_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock").cluster_count()).sum()
    }

    /// Ingest a batch: reconcile once (in parallel, order-preserving),
    /// partition the reconciled offers by target shard, then let the
    /// touched shards route and re-fuse concurrently. Takes `&self`; only
    /// the shards the batch actually hashes to are write-locked.
    pub fn ingest<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> IngestStats {
        let _span = pse_obs::span("store.ingest");
        pse_obs::add("store.ingest", offers.len() as u64);
        let reconciled = reconcile_batch(offers, &self.correspondences, provider);
        let n = self.shards.len();
        let mut parts: Vec<Vec<ReconciledOffer>> = (0..n).map(|_| Vec::new()).collect();
        for r in reconciled {
            // Offers the router drops here would be dropped identically by
            // any shard; routing again inside the shard is cheap and keeps
            // `ProductStore::ingest_reconciled` the single source of truth.
            let Some((attr, value)) = self.keys.route(&r) else { continue };
            let key = (r.category, attr, value);
            parts[shard_of(&key, n)].push(r);
        }
        let work: Vec<(usize, Mutex<Option<Vec<ReconciledOffer>>>)> =
            parts.into_iter().enumerate().map(|(i, batch)| (i, Mutex::new(Some(batch)))).collect();
        let stats: Vec<IngestStats> = pse_par::par_map(&work, |(i, slot)| {
            let batch = slot.lock().expect("batch slot").take().unwrap_or_default();
            if batch.is_empty() {
                return IngestStats::default();
            }
            self.shards[*i].write().expect("shard lock").ingest_reconciled(catalog, batch)
        });
        let mut total = stats.into_iter().fold(IngestStats::default(), merge_stats);
        total.offers_in = offers.len();
        total
    }

    /// Remove offers by id, re-fusing affected clusters. Each shard owns
    /// the index for its own offers, so the retraction is broadcast; a
    /// shard that knows none of the ids does nothing.
    pub fn retract(&self, catalog: &Catalog, ids: &[OfferId]) -> IngestStats {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let stats: Vec<IngestStats> = pse_par::par_map(&idx, |&i| {
            self.shards[i].write().expect("shard lock").retract(catalog, ids)
        });
        let mut total = stats.into_iter().fold(IngestStats::default(), merge_stats);
        total.offers_in = ids.len();
        total
    }

    /// Current products in cluster-key order — the exact sequence the
    /// single store (and `RuntimePipeline::process`) would emit.
    pub fn products(&self) -> Vec<SynthesizedProduct> {
        let mut keyed: Vec<(ClusterKey, SynthesizedProduct)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("shard lock");
            keyed.extend(guard.products_keyed().map(|(k, p)| (k.clone(), p.clone())));
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.into_iter().map(|(_, p)| p).collect()
    }

    /// Products of one category, in cluster-key order.
    pub fn products_in_category(&self, category: CategoryId) -> Vec<SynthesizedProduct> {
        let mut keyed: Vec<(ClusterKey, SynthesizedProduct)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("shard lock");
            keyed.extend(
                guard
                    .products_keyed()
                    .filter(|(k, _)| k.0 == category)
                    .map(|(k, p)| (k.clone(), p.clone())),
            );
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.into_iter().map(|(_, p)| p).collect()
    }

    /// The product for one cluster key — a single-shard read lock.
    pub fn product_for(&self, key: &ClusterKey) -> Option<SynthesizedProduct> {
        let shard = &self.shards[shard_of(key, self.shards.len())];
        shard.read().expect("shard lock").product_for(key).cloned()
    }

    /// Merge the shards into one store and snapshot it — byte-identical
    /// to the snapshot of a single [`ProductStore`] fed the same stream,
    /// whatever the shard count.
    pub fn snapshot_json(&self) -> String {
        self.to_store().snapshot_json()
    }

    /// Rebuild from a snapshot (either a single store's or a sharded
    /// store's — they are the same format), splitting into `n_shards`.
    pub fn restore_json(json: &str, n_shards: usize) -> Result<Self, StoreError> {
        Ok(Self::from_store(ProductStore::restore_json(json)?, n_shards))
    }

    /// Collapse into one single-threaded store (cluster state moves, no
    /// re-fusion).
    pub fn to_store(&self) -> ProductStore {
        let mut merged =
            ProductStore::with_config(self.correspondences.clone(), self.config.clone());
        for shard in &self.shards {
            merged.absorb(shard.read().expect("shard lock").clone());
        }
        merged
    }

    /// Offer counts per shard (balance diagnostics; `/metrics` extra).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().expect("shard lock").offer_count()).collect()
    }
}

fn merge_stats(mut acc: IngestStats, s: IngestStats) -> IngestStats {
    acc.offers_in += s.offers_in;
    acc.offers_routed += s.offers_routed;
    acc.clusters_dirty += s.clusters_dirty;
    acc.refused += s.refused;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let key = (CategoryId(3), "MPN".to_string(), "abc123".to_string());
        for n in 1..=8 {
            let s = shard_of(&key, n);
            assert!(s < n);
            assert_eq!(s, shard_of(&key, n), "deterministic");
        }
        assert_eq!(shard_of(&key, 1), 0);
    }

    #[test]
    fn shard_of_separates_field_boundaries() {
        // ("ab", "c") and ("a", "bc") must not collide by construction.
        let a = (CategoryId(0), "ab".to_string(), "c".to_string());
        let b = (CategoryId(0), "a".to_string(), "bc".to_string());
        let ha = (0..64).map(|n| shard_of(&a, n + 1)).collect::<Vec<_>>();
        let hb = (0..64).map(|n| shard_of(&b, n + 1)).collect::<Vec<_>>();
        assert_ne!(ha, hb);
    }
}
