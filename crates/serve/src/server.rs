//! The HTTP front: a fixed worker pool over a bounded accept queue.
//!
//! One acceptor thread pushes connections into an `mpsc::sync_channel`
//! whose capacity is the backpressure bound — when the queue is full the
//! acceptor answers `503 Service Unavailable` directly instead of letting
//! latency grow without bound. Workers pull connections, parse one
//! request each (`Connection: close`), and dispatch; a panicking handler
//! is caught and turned into a 500, never a dead worker.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or `POST /shutdown`) stops
//! the acceptor, lets the workers drain every queued connection, joins
//! all threads, and flushes a final snapshot when a snapshot path is
//! configured.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pse_core::{Catalog, CategoryId, Offer, OfferId};
use pse_obs::{FlightRecorder, RecorderConfig, TraceId};
use pse_synthesis::runtime::normalize_key;
use pse_synthesis::FnProvider;
use pse_wal::DurabilityConfig;

use crate::durable::{durable_ingest, durable_retract, durable_snapshot, open_durable, DurableCtx};
use crate::error::ServeError;
use crate::http::{read_request, write_response, Body, Request};
use crate::shard::ShardedStore;

/// Server knobs. `addr` of `"127.0.0.1:0"` binds an ephemeral port —
/// read the real one from [`ServerHandle::addr`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get 503.
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Cap on request size (header + body); larger requests get 413.
    /// Defaults to 1 MiB (the documented cap).
    pub max_request_bytes: usize,
    /// Where to flush a final snapshot on shutdown, if anywhere.
    pub snapshot_path: Option<PathBuf>,
    /// Write-ahead log file. Durability is on iff this *and*
    /// `snapshot_dir` are both set: every ingest/retract is logged and
    /// fsynced before it is applied, and startup recovers from
    /// segments + WAL (disk state wins over the store passed to
    /// [`start`]).
    pub wal_path: Option<PathBuf>,
    /// Directory for segmented binary snapshots (manifest + one segment
    /// per shard). See `wal_path`.
    pub snapshot_dir: Option<PathBuf>,
    /// Fold the WAL into fresh segments (background compaction) once it
    /// holds more than this many record bytes.
    pub compaction_threshold_bytes: u64,
    /// Flight-recorder sizing: the rotating recent window and the
    /// always-keep-slowest tail-sampling set behind `GET /debug/requests`.
    pub recorder: RecorderConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_bytes: 1 << 20,
            snapshot_path: None,
            wal_path: None,
            snapshot_dir: None,
            compaction_threshold_bytes: 8 << 20,
            recorder: RecorderConfig::default(),
        }
    }
}

struct Inner {
    store: ShardedStore,
    catalog: Catalog,
    config: ServerConfig,
    stop: AtomicBool,
    queue_depth: AtomicUsize,
    addr: SocketAddr,
    recorder: FlightRecorder,
    /// The durable write path when WAL + snapshot dir are configured.
    /// Lock order: snapshot gate → durability mutex → shard locks,
    /// never any other order (see `durable` module docs).
    durability: Option<DurableCtx>,
    /// Wakes the compaction thread: `true` = a writer saw the WAL cross
    /// the compaction threshold.
    compact: (Mutex<bool>, Condvar),
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

/// Start serving `store` (with `catalog` supplying schemas for ingest
/// re-fusion) on `config.addr`.
pub fn start(
    store: ShardedStore,
    catalog: Catalog,
    config: ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Seed every counter the record path can emit, so the counter set in
    // a report is a function of the server running, not of which
    // requests happened to arrive (`obs_check` requires the full set).
    for c in [
        "serve.requests",
        "serve.backpressure_503",
        "serve.http_200",
        "serve.http_400",
        "serve.http_404",
        "serve.http_405",
        "serve.http_413",
        "serve.http_500",
        "serve.http_503",
        "serve.http_other",
        "serve.io_error",
        "serve.cache.hit",
        "serve.cache.miss",
        "serve.cache.invalidated",
        "serve.accept_error",
    ] {
        pse_obs::seed(c);
    }
    for (_, m) in &ENDPOINTS {
        pse_obs::seed(m.requests);
        pse_obs::seed(m.errors);
    }
    let (store, durability) = match (&config.wal_path, &config.snapshot_dir) {
        (Some(wal_path), Some(snapshot_dir)) => {
            let dcfg = DurabilityConfig {
                wal_path: wal_path.clone(),
                snapshot_dir: snapshot_dir.clone(),
                compaction_threshold_bytes: config.compaction_threshold_bytes,
                group: Default::default(),
            };
            let (store, ctx, _stats) = open_durable(dcfg, &catalog, store)?;
            (store, Some(ctx))
        }
        _ => (store, None),
    };
    let inner = Arc::new(Inner {
        store,
        catalog,
        config: config.clone(),
        stop: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        addr,
        recorder: FlightRecorder::new(config.recorder.clone()),
        durability,
        compact: (Mutex::new(false), Condvar::new()),
    });
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner, &rx))
        })
        .collect();
    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&inner, &listener, &tx))
    };
    let compactor = inner.durability.is_some().then(|| {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || compaction_loop(&inner))
    });
    Ok(ServerHandle { inner, acceptor, workers, compactor })
}

/// Background WAL compaction: wait until a writer signals the threshold
/// was crossed (or shutdown), then fold the log into fresh segments.
/// Holding the durability mutex across the fold keeps writers out, so
/// the snapshot captures exactly the logged records. Errors are left for
/// shutdown's final snapshot to surface — the WAL still has every record.
fn compaction_loop(inner: &Inner) {
    let Some(ctx) = &inner.durability else { return };
    let (flag, cvar) = &inner.compact;
    loop {
        let mut pending = flag.lock().expect("compact flag");
        while !*pending && !inner.stop.load(Ordering::SeqCst) {
            let (next, _) =
                cvar.wait_timeout(pending, Duration::from_millis(200)).expect("compact flag");
            pending = next;
        }
        if inner.stop.load(Ordering::SeqCst) {
            return; // shutdown writes the final snapshot itself
        }
        *pending = false;
        drop(pending);
        if ctx.durability().lock().expect("durability lock").wants_compaction() {
            let _ = durable_snapshot(&inner.store, ctx);
        }
    }
}

/// Signal the compaction thread when the WAL has outgrown its threshold.
fn maybe_compact(inner: &Inner) {
    let Some(ctx) = &inner.durability else { return };
    if !ctx.durability().lock().expect("durability lock").wants_compaction() {
        return;
    }
    let (flag, cvar) = &inner.compact;
    *flag.lock().expect("compact flag") = true;
    cvar.notify_one();
}

impl ServerHandle {
    /// The bound address (real port even when configured as `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The served store (concurrent reads are fine while serving).
    pub fn store(&self) -> &ShardedStore {
        &self.inner.store
    }

    /// Block until something (e.g. `POST /shutdown`) asks the server to
    /// stop. Returns immediately if it already has.
    pub fn wait_for_stop(&self) {
        while !self.inner.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stop accepting, drain queued and in-flight requests, join every
    /// thread, flush the final snapshot if configured, and hand back the
    /// store.
    pub fn shutdown(self) -> Result<ShardedStore, ServeError> {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.compact.1.notify_one();
        // Wake the acceptor if it is blocked in accept(); an error just
        // means it already exited.
        let _ = TcpStream::connect(self.inner.addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(c) = self.compactor {
            let _ = c.join();
        }
        let inner = Arc::into_inner(self.inner).expect("all server threads joined");
        if let Some(ctx) = &inner.durability {
            // Final fold: every logged record lands in segments, so the
            // next start replays an empty WAL tail.
            durable_snapshot(&inner.store, ctx)?;
        }
        if let Some(path) = &inner.config.snapshot_path {
            // Stage-and-rename: a crash mid-write must leave the previous
            // snapshot intact, never a torn file at the final path.
            pse_wal::atomic_write(path, inner.store.snapshot_json().as_bytes())?;
        }
        Ok(inner.store)
    }
}

/// Backoff schedule for persistent `accept()` errors (EMFILE, ENOBUFS…):
/// doubling from 1ms, capped at 250ms so recovery is never slow, reset
/// on the next successful accept. Without it a persistent error spins
/// the acceptor hot at 100% CPU.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(250);

fn next_accept_backoff(current: Duration) -> Duration {
    current.saturating_mul(2).min(ACCEPT_BACKOFF_CAP)
}

fn accept_loop(inner: &Inner, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                stream
            }
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                pse_obs::incr("serve.accept_error");
                std::thread::sleep(backoff);
                backoff = next_accept_backoff(backoff);
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing shutdown).
            break;
        }
        let depth = inner.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        pse_obs::observe("serve.queue_depth", depth as u64);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
                pse_obs::incr("serve.backpressure_503");
                count_status(503);
                let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
                let _ = write_response(&mut stream, 503, "text/plain", b"accept queue full\n");
                drain_unread(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // tx drops here; workers drain whatever is still queued, then exit.
}

fn worker_loop(inner: &Inner, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = rx.lock().expect("accept queue lock").recv();
        let Ok(mut stream) = next else { break };
        inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
        handle_connection(inner, &mut stream);
    }
}

fn count_status(status: u16) {
    pse_obs::incr(match status {
        200 => "serve.http_200",
        400 => "serve.http_400",
        404 => "serve.http_404",
        405 => "serve.http_405",
        413 => "serve.http_413",
        500 => "serve.http_500",
        503 => "serve.http_503",
        _ => "serve.http_other",
    });
}

/// The RED-metric names for one routed endpoint, precomputed so the
/// request path never formats a metric name.
struct EndpointMetrics {
    requests: &'static str,
    errors: &'static str,
    us: &'static str,
}

macro_rules! endpoint {
    ($label:literal) => {
        (
            $label,
            EndpointMetrics {
                requests: concat!("serve.endpoint.", $label, ".requests"),
                errors: concat!("serve.endpoint.", $label, ".errors"),
                us: concat!("serve.endpoint.", $label, ".us"),
            },
        )
    };
}

/// Every label [`route_label`] can produce, plus the non-routable
/// outcomes: `invalid` (unparseable or oversized request head) and `io`
/// (client vanished before a request could be read).
const ENDPOINTS: [(&str, EndpointMetrics); 12] = [
    endpoint!("healthz"),
    endpoint!("metrics"),
    endpoint!("products"),
    endpoint!("product"),
    endpoint!("ingest"),
    endpoint!("retract"),
    endpoint!("shutdown"),
    endpoint!("debug_requests"),
    endpoint!("debug_trace"),
    endpoint!("other"),
    endpoint!("invalid"),
    endpoint!("io"),
];

fn endpoint_metrics(label: &str) -> &'static EndpointMetrics {
    ENDPOINTS.iter().find(|(l, _)| *l == label).map(|(_, m)| m).unwrap_or(&ENDPOINTS[9].1)
    // "other"
}

/// The metrics/span label a request routes to (every arm of [`dispatch`]).
fn route_label(request: &Request) -> &'static str {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/product") => "product",
        ("GET", path) if path.starts_with("/products/") => "products",
        ("GET", "/debug/requests") => "debug_requests",
        ("GET", path) if path.starts_with("/debug/trace/") => "debug_trace",
        ("POST", "/ingest") => "ingest",
        ("POST", "/retract") => "retract",
        ("POST", "/shutdown") => "shutdown",
        _ => "other",
    }
}

/// One endpoint RED observation: exactly one per handled request, paired
/// with the `serve.requests` increment at request start — `obs_check`
/// verifies the per-endpoint request counters sum back to it. Errors are
/// server-side failures: 5xx, or status 0 (client gone mid-read).
fn record_endpoint(label: &str, status: u16, started: &Instant) {
    if !pse_obs::enabled() {
        return;
    }
    let m = endpoint_metrics(label);
    pse_obs::incr(m.requests);
    if status >= 500 || status == 0 {
        pse_obs::incr(m.errors);
    }
    pse_obs::observe(m.us, started.elapsed().as_micros() as u64);
}

fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    let mut trace = pse_obs::start_request_trace(None);
    let _span = pse_obs::span("serve.request");
    pse_obs::incr("serve.requests");
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let mut request_incomplete = false;
    let parsed = {
        let _parse = pse_obs::span("parse");
        read_request(stream, inner.config.max_request_bytes)
    };
    let (endpoint, (status, content_type, body)) = match parsed {
        Ok(request) => {
            // Adopt the caller's trace identity so cross-process traces
            // (a future router fanning out to shard nodes) stitch by id.
            if let Some(id) = request.header("x-pse-trace-id").and_then(TraceId::from_hex) {
                trace.set_id(id);
            }
            let endpoint = route_label(&request);
            // A panicking handler must cost us a 500, not a worker.
            let response =
                match catch_unwind(AssertUnwindSafe(|| dispatch(inner, &request, endpoint))) {
                    Ok(response) => response,
                    Err(_) => (500, "text/plain", b"internal error\n".to_vec().into()),
                };
            (endpoint, response)
        }
        Err(ServeError::RequestTooLarge { got, cap }) => {
            request_incomplete = true;
            (
                "invalid",
                (
                    413,
                    "text/plain",
                    format!("request of {got} bytes exceeds cap of {cap}\n").into_bytes().into(),
                ),
            )
        }
        Err(ServeError::Io(_)) => {
            // Client vanished or timed out; nothing to write to.
            pse_obs::incr("serve.io_error");
            record_endpoint("io", 0, &started);
            if let Some(t) = trace.finish("io", 0) {
                inner.recorder.record(t);
            }
            return;
        }
        Err(e) => ("invalid", (400, "text/plain", format!("{e}\n").into_bytes().into())),
    };
    count_status(status);
    {
        let _write = pse_obs::span("write");
        if write_response(stream, status, content_type, body.as_ref()).is_err() {
            pse_obs::incr("serve.io_error");
        }
        let _ = stream.flush();
    }
    if request_incomplete {
        // The client is still sending; closing now would RST the socket
        // and can destroy the buffered response before the client reads
        // it. Swallow what is in flight so the close is a clean FIN.
        drain_unread(stream);
    }
    pse_obs::observe("serve.request_us", started.elapsed().as_micros() as u64);
    record_endpoint(endpoint, status, &started);
    if let Some(t) = trace.finish(endpoint, status) {
        inner.recorder.record(t);
    }
}

/// Read and discard whatever the peer already sent (briefly), so closing
/// the socket does not reset it while the response is still in transit.
fn drain_unread(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget = 1 << 20;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

type Response = (u16, &'static str, Body);

fn dispatch(inner: &Inner, request: &Request, endpoint: &'static str) -> Response {
    // The route stage of the request span tree: `serve.request.<endpoint>`.
    let _route = pse_obs::span(endpoint);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "text/plain", b"ok\n".to_vec().into()),
        ("GET", "/metrics") => {
            (200, "application/json", pse_obs::report().to_json().into_bytes().into())
        }
        ("GET", "/product") => get_product(inner, request),
        ("GET", path) if path.starts_with("/products/") => {
            get_products(inner, &path["/products/".len()..])
        }
        ("GET", "/debug/requests") => {
            (200, "application/json", inner.recorder.requests_json().into_bytes().into())
        }
        ("GET", path) if path.starts_with("/debug/trace/") => {
            get_debug_trace(inner, &path["/debug/trace/".len()..])
        }
        ("POST", "/ingest") => post_ingest(inner, request),
        ("POST", "/retract") => post_retract(inner, request),
        ("POST", "/shutdown") => {
            inner.stop.store(true, Ordering::SeqCst);
            // Wake the acceptor so it notices; error means it already did.
            let _ = TcpStream::connect(inner.addr);
            (200, "text/plain", b"shutting down\n".to_vec().into())
        }
        ("GET" | "POST", _) => (404, "text/plain", b"no such endpoint\n".to_vec().into()),
        _ => (405, "text/plain", b"method not allowed\n".to_vec().into()),
    }
}

fn get_products(inner: &Inner, raw_category: &str) -> Response {
    let Ok(category) = raw_category.parse::<u32>() else {
        return bad_request(format!("category must be an integer, got {raw_category:?}"));
    };
    // The hot path: one snapshot load, one map lookup, shared bytes —
    // no shard lock, no per-request serialization. Byte-identical to
    // `json_200(&inner.store.products_in_category(..))`.
    let _probe = pse_obs::span("cache_probe");
    (200, "application/json", inner.store.products_response(CategoryId(category)).into())
}

fn get_product(inner: &Inner, request: &Request) -> Response {
    let (Some(category), Some(attr), Some(key)) =
        (request.query_param("category"), request.query_param("attr"), request.query_param("key"))
    else {
        return bad_request("need category=<id>&attr=<name>&key=<value>".to_string());
    };
    let Ok(category) = category.parse::<u32>() else {
        return bad_request(format!("category must be an integer, got {category:?}"));
    };
    let cluster_key = (CategoryId(category), attr.to_string(), normalize_key(key));
    // Like `get_products`, served from the snapshot's cached per-product
    // JSON — byte-identical to `json_200(&inner.store.product_for(..))`.
    let _lookup = pse_obs::span("lookup");
    match inner.store.product_response(&cluster_key) {
        Some(json) => (200, "application/json", json.into()),
        None => (404, "text/plain", b"no such product\n".to_vec().into()),
    }
}

fn get_debug_trace(inner: &Inner, raw_id: &str) -> Response {
    let Some(id) = TraceId::from_hex(raw_id) else {
        return bad_request(format!("trace id must be 1-16 hex digits, got {raw_id:?}"));
    };
    match inner.recorder.trace_json(id) {
        Some(json) => (200, "application/json", json.into_bytes().into()),
        None => (404, "text/plain", b"no such trace\n".to_vec().into()),
    }
}

fn post_ingest(inner: &Inner, request: &Request) -> Response {
    let offers: Vec<Offer> = {
        let _parse = pse_obs::span("parse_body");
        match parse_json_body(&request.body) {
            Ok(offers) => offers,
            Err(resp) => return resp,
        }
    };
    pse_obs::add("serve.ingest_offers", offers.len() as u64);
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let stats = match &inner.durability {
        Some(durability) => {
            match durable_ingest(&inner.store, durability, &inner.catalog, &offers, &provider) {
                Ok(stats) => {
                    maybe_compact(inner);
                    stats
                }
                Err(e) => return durability_failed(e),
            }
        }
        None => inner.store.ingest(&inner.catalog, &offers, &provider),
    };
    json_200(&stats)
}

fn post_retract(inner: &Inner, request: &Request) -> Response {
    let ids: Vec<u64> = {
        let _parse = pse_obs::span("parse_body");
        match parse_json_body(&request.body) {
            Ok(ids) => ids,
            Err(resp) => return resp,
        }
    };
    let ids: Vec<OfferId> = ids.into_iter().map(OfferId).collect();
    let stats = match &inner.durability {
        Some(durability) => match durable_retract(&inner.store, durability, &inner.catalog, &ids) {
            Ok(stats) => {
                maybe_compact(inner);
                stats
            }
            Err(e) => return durability_failed(e),
        },
        None => inner.store.retract(&inner.catalog, &ids),
    };
    json_200(&stats)
}

/// A write we could not make durable is a server-side failure: the
/// record never hit the log, so the store was not mutated either.
fn durability_failed(e: ServeError) -> Response {
    (500, "text/plain", format!("{e}\n").into_bytes().into())
}

fn parse_json_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| bad_request("body is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| bad_request(format!("body is not valid JSON: {}", e.0)))
}

fn json_200<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(json) => (200, "application/json", json.into_bytes().into()),
        Err(e) => {
            (500, "text/plain", format!("serialization failed: {}\n", e.0).into_bytes().into())
        }
    }
}

fn bad_request(message: String) -> Response {
    (400, "text/plain", format!("{message}\n").into_bytes().into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_a_cap() {
        let mut d = ACCEPT_BACKOFF_START;
        let mut schedule = Vec::new();
        for _ in 0..12 {
            schedule.push(d.as_millis());
            d = next_accept_backoff(d);
        }
        assert_eq!(schedule[..9], [1, 2, 4, 8, 16, 32, 64, 128, 250]);
        assert!(schedule[9..].iter().all(|&ms| ms == 250), "capped, never grows past 250ms");
    }
}
