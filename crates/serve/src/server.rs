//! The HTTP front: a fixed worker pool over a bounded accept queue.
//!
//! One acceptor thread pushes connections into an `mpsc::sync_channel`
//! whose capacity is the backpressure bound — when the queue is full the
//! acceptor answers `503 Service Unavailable` directly instead of letting
//! latency grow without bound. Workers pull connections, parse one
//! request each (`Connection: close`), and dispatch; a panicking handler
//! is caught and turned into a 500, never a dead worker.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or `POST /shutdown`) stops
//! the acceptor, lets the workers drain every queued connection, joins
//! all threads, and flushes a final snapshot when a snapshot path is
//! configured.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pse_core::{Catalog, CategoryId, Offer, OfferId};
use pse_obs::{FlightRecorder, RecorderConfig, TraceId};
use pse_synthesis::runtime::normalize_key;
use pse_synthesis::FnProvider;
use pse_wal::DurabilityConfig;

use crate::durable::{durable_ingest, durable_retract, durable_snapshot, open_durable, DurableCtx};
use crate::error::ServeError;
use crate::http::{read_request, write_response, Body, Request};
use crate::router::{EndpointMetrics, Method, Params, Query, Route, RouteOutcome, Router, Seg};
use crate::shard::ShardedStore;

/// Server knobs. `addr` of `"127.0.0.1:0"` binds an ephemeral port —
/// read the real one from [`ServerHandle::addr`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get 503.
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Cap on request size (header + body); larger requests get 413.
    /// Defaults to 1 MiB (the documented cap).
    pub max_request_bytes: usize,
    /// Where to flush a final snapshot on shutdown, if anywhere.
    pub snapshot_path: Option<PathBuf>,
    /// Write-ahead log file. Durability is on iff this *and*
    /// `snapshot_dir` are both set: every ingest/retract is logged and
    /// fsynced before it is applied, and startup recovers from
    /// segments + WAL (disk state wins over the store passed to
    /// [`start`]).
    pub wal_path: Option<PathBuf>,
    /// Directory for segmented binary snapshots (manifest + one segment
    /// per shard). See `wal_path`.
    pub snapshot_dir: Option<PathBuf>,
    /// Fold the WAL into fresh segments (background compaction) once it
    /// holds more than this many record bytes.
    pub compaction_threshold_bytes: u64,
    /// Flight-recorder sizing: the rotating recent window and the
    /// always-keep-slowest tail-sampling set behind `GET /debug/requests`.
    pub recorder: RecorderConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_bytes: 1 << 20,
            snapshot_path: None,
            wal_path: None,
            snapshot_dir: None,
            compaction_threshold_bytes: 8 << 20,
            recorder: RecorderConfig::default(),
        }
    }
}

struct Inner {
    store: ShardedStore,
    catalog: Catalog,
    config: ServerConfig,
    stop: AtomicBool,
    queue_depth: AtomicUsize,
    addr: SocketAddr,
    recorder: FlightRecorder,
    /// The durable write path when WAL + snapshot dir are configured.
    /// Lock order: snapshot gate → durability mutex → shard locks,
    /// never any other order (see `durable` module docs).
    durability: Option<DurableCtx>,
    /// Wakes the compaction thread: `true` = a writer saw the WAL cross
    /// the compaction threshold.
    compact: (Mutex<bool>, Condvar),
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

/// Start serving `store` (with `catalog` supplying schemas for ingest
/// re-fusion) on `config.addr`.
pub fn start(
    store: ShardedStore,
    catalog: Catalog,
    config: ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Seed every counter the record path can emit, so the counter set in
    // a report is a function of the server running, not of which
    // requests happened to arrive (`obs_check` requires the full set).
    for c in [
        "serve.requests",
        "serve.backpressure_503",
        "serve.http_200",
        "serve.http_400",
        "serve.http_404",
        "serve.http_405",
        "serve.http_413",
        "serve.http_500",
        "serve.http_503",
        "serve.http_other",
        "serve.io_error",
        "serve.cache.hit",
        "serve.cache.miss",
        "serve.cache.invalidated",
        "serve.accept_error",
    ] {
        pse_obs::seed(c);
    }
    // RED counters come straight off the route table (plus the
    // non-routable outcomes), so a new route is seeded by construction.
    for route in ROUTER.routes() {
        pse_obs::seed(route.metrics.requests);
        pse_obs::seed(route.metrics.errors);
    }
    for m in &EXTRA_ENDPOINTS {
        pse_obs::seed(m.requests);
        pse_obs::seed(m.errors);
    }
    // The query engine's metric family, served through `GET /search`.
    pse_query::seed_metrics();
    let (store, durability) = match (&config.wal_path, &config.snapshot_dir) {
        (Some(wal_path), Some(snapshot_dir)) => {
            let dcfg = DurabilityConfig {
                wal_path: wal_path.clone(),
                snapshot_dir: snapshot_dir.clone(),
                compaction_threshold_bytes: config.compaction_threshold_bytes,
                group: Default::default(),
            };
            let (store, ctx, _stats) = open_durable(dcfg, &catalog, store)?;
            (store, Some(ctx))
        }
        _ => (store, None),
    };
    let inner = Arc::new(Inner {
        store,
        catalog,
        config: config.clone(),
        stop: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        addr,
        recorder: FlightRecorder::new(config.recorder.clone()),
        durability,
        compact: (Mutex::new(false), Condvar::new()),
    });
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner, &rx))
        })
        .collect();
    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&inner, &listener, &tx))
    };
    let compactor = inner.durability.is_some().then(|| {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || compaction_loop(&inner))
    });
    Ok(ServerHandle { inner, acceptor, workers, compactor })
}

/// Background WAL compaction: wait until a writer signals the threshold
/// was crossed (or shutdown), then fold the log into fresh segments.
/// Holding the durability mutex across the fold keeps writers out, so
/// the snapshot captures exactly the logged records. Errors are left for
/// shutdown's final snapshot to surface — the WAL still has every record.
fn compaction_loop(inner: &Inner) {
    let Some(ctx) = &inner.durability else { return };
    let (flag, cvar) = &inner.compact;
    loop {
        let mut pending = flag.lock().expect("compact flag");
        while !*pending && !inner.stop.load(Ordering::SeqCst) {
            let (next, _) =
                cvar.wait_timeout(pending, Duration::from_millis(200)).expect("compact flag");
            pending = next;
        }
        if inner.stop.load(Ordering::SeqCst) {
            return; // shutdown writes the final snapshot itself
        }
        *pending = false;
        drop(pending);
        if ctx.durability().lock().expect("durability lock").wants_compaction() {
            let _ = durable_snapshot(&inner.store, ctx);
        }
    }
}

/// Signal the compaction thread when the WAL has outgrown its threshold.
fn maybe_compact(inner: &Inner) {
    let Some(ctx) = &inner.durability else { return };
    if !ctx.durability().lock().expect("durability lock").wants_compaction() {
        return;
    }
    let (flag, cvar) = &inner.compact;
    *flag.lock().expect("compact flag") = true;
    cvar.notify_one();
}

impl ServerHandle {
    /// The bound address (real port even when configured as `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The served store (concurrent reads are fine while serving).
    pub fn store(&self) -> &ShardedStore {
        &self.inner.store
    }

    /// Block until something (e.g. `POST /shutdown`) asks the server to
    /// stop. Returns immediately if it already has.
    pub fn wait_for_stop(&self) {
        while !self.inner.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stop accepting, drain queued and in-flight requests, join every
    /// thread, flush the final snapshot if configured, and hand back the
    /// store.
    pub fn shutdown(self) -> Result<ShardedStore, ServeError> {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.compact.1.notify_one();
        // Wake the acceptor if it is blocked in accept(); an error just
        // means it already exited.
        let _ = TcpStream::connect(self.inner.addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(c) = self.compactor {
            let _ = c.join();
        }
        let inner = Arc::into_inner(self.inner).expect("all server threads joined");
        if let Some(ctx) = &inner.durability {
            // Final fold: every logged record lands in segments, so the
            // next start replays an empty WAL tail.
            durable_snapshot(&inner.store, ctx)?;
        }
        if let Some(path) = &inner.config.snapshot_path {
            // Stage-and-rename: a crash mid-write must leave the previous
            // snapshot intact, never a torn file at the final path.
            pse_wal::atomic_write(path, inner.store.snapshot_json().as_bytes())?;
        }
        Ok(inner.store)
    }
}

/// Backoff schedule for persistent `accept()` errors (EMFILE, ENOBUFS…):
/// doubling from 1ms, capped at 250ms so recovery is never slow, reset
/// on the next successful accept. Without it a persistent error spins
/// the acceptor hot at 100% CPU.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(250);

fn next_accept_backoff(current: Duration) -> Duration {
    current.saturating_mul(2).min(ACCEPT_BACKOFF_CAP)
}

fn accept_loop(inner: &Inner, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                stream
            }
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                pse_obs::incr("serve.accept_error");
                std::thread::sleep(backoff);
                backoff = next_accept_backoff(backoff);
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing shutdown).
            break;
        }
        let depth = inner.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        pse_obs::observe("serve.queue_depth", depth as u64);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
                pse_obs::incr("serve.backpressure_503");
                count_status(503);
                let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
                // No request was read, so no trace exists: empty trace_id.
                let body = error_body("overloaded", "accept queue full", "");
                let _ = write_response(&mut stream, 503, "application/json", &body);
                drain_unread(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // tx drops here; workers drain whatever is still queued, then exit.
}

fn worker_loop(inner: &Inner, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = rx.lock().expect("accept queue lock").recv();
        let Ok(mut stream) = next else { break };
        inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
        handle_connection(inner, &mut stream);
    }
}

fn count_status(status: u16) {
    pse_obs::incr(match status {
        200 => "serve.http_200",
        400 => "serve.http_400",
        404 => "serve.http_404",
        405 => "serve.http_405",
        413 => "serve.http_413",
        500 => "serve.http_500",
        503 => "serve.http_503",
        _ => "serve.http_other",
    });
}

/// Expand one row of the route table: the span/metric label is written
/// once and the RED metric names derive from it at compile time, so a
/// route cannot be added without its metrics — the old failure mode of
/// updating the dispatch `match` but not the label `match` is
/// unrepresentable.
macro_rules! route {
    ($method:ident, [$($seg:expr),* $(,)?], $label:literal, $handler:expr) => {
        Route {
            method: Method::$method,
            pattern: &[$($seg),*],
            label: $label,
            metrics: endpoint_metrics_for!($label),
            handler: $handler,
        }
    };
}

macro_rules! endpoint_metrics_for {
    ($label:literal) => {
        EndpointMetrics {
            requests: concat!("serve.endpoint.", $label, ".requests"),
            errors: concat!("serve.endpoint.", $label, ".errors"),
            us: concat!("serve.endpoint.", $label, ".us"),
        }
    };
}

/// A handler returns its success response or a typed API error the
/// connection loop renders into the JSON error envelope (it carries the
/// request's trace id, which handlers never see).
type HandlerResult = Result<Response, ApiError>;
type Handler = fn(&Inner, &Request, &Params) -> HandlerResult;

/// Every routed endpoint: dispatch, span/metric label, and RED metric
/// names in one table.
static ROUTES: &[Route<Handler>] = &[
    route!(Get, [Seg::Lit("healthz")], "healthz", h_healthz),
    route!(Get, [Seg::Lit("metrics")], "metrics", h_metrics),
    route!(Get, [Seg::Lit("product")], "product", h_product),
    route!(Get, [Seg::Lit("products"), Seg::Param("category")], "products", h_products),
    route!(Get, [Seg::Lit("search")], "search", h_search),
    route!(Get, [Seg::Lit("debug"), Seg::Lit("requests")], "debug_requests", h_debug_requests),
    route!(
        Get,
        [Seg::Lit("debug"), Seg::Lit("trace"), Seg::Param("id")],
        "debug_trace",
        h_debug_trace
    ),
    route!(Post, [Seg::Lit("ingest")], "ingest", h_ingest),
    route!(Post, [Seg::Lit("retract")], "retract", h_retract),
    route!(Post, [Seg::Lit("shutdown")], "shutdown", h_shutdown),
];

static ROUTER: Router<Handler> = Router::new(ROUTES);

/// The non-routable outcomes: `other` (no route matched), `invalid`
/// (unparseable or oversized request head), and `io` (client vanished
/// before a request could be read).
static EXTRA_ENDPOINTS: [EndpointMetrics; 3] =
    [endpoint_metrics_for!("other"), endpoint_metrics_for!("invalid"), endpoint_metrics_for!("io")];

fn endpoint_metrics(label: &str) -> &'static EndpointMetrics {
    match label {
        "other" => &EXTRA_ENDPOINTS[0],
        "invalid" => &EXTRA_ENDPOINTS[1],
        "io" => &EXTRA_ENDPOINTS[2],
        _ => ROUTES
            .iter()
            .find(|r| r.label == label)
            .map(|r| &r.metrics)
            .unwrap_or(&EXTRA_ENDPOINTS[0]),
    }
}

/// One endpoint RED observation: exactly one per handled request, paired
/// with the `serve.requests` increment at request start — `obs_check`
/// verifies the per-endpoint request counters sum back to it. Errors are
/// server-side failures: 5xx, or status 0 (client gone mid-read).
fn record_endpoint(label: &str, status: u16, started: &Instant) {
    if !pse_obs::enabled() {
        return;
    }
    let m = endpoint_metrics(label);
    pse_obs::incr(m.requests);
    if status >= 500 || status == 0 {
        pse_obs::incr(m.errors);
    }
    pse_obs::observe(m.us, started.elapsed().as_micros() as u64);
}

fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    let mut trace = pse_obs::start_request_trace(None);
    let _span = pse_obs::span("serve.request");
    pse_obs::incr("serve.requests");
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let mut request_incomplete = false;
    let parsed = {
        let _parse = pse_obs::span("parse");
        read_request(stream, inner.config.max_request_bytes)
    };
    let (endpoint, (status, content_type, body)) = match parsed {
        Ok(request) => {
            // Adopt the caller's trace identity so cross-process traces
            // (a future router fanning out to shard nodes) stitch by id.
            if let Some(id) = request.header("x-pse-trace-id").and_then(TraceId::from_hex) {
                trace.set_id(id);
            }
            let trace_id = trace_id_hex(&trace);
            match ROUTER.find(&request.method, &request.path) {
                RouteOutcome::Matched(route, params) => {
                    // A panicking handler must cost us a 500, not a worker.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let _route_span = pse_obs::span(route.label);
                        (route.handler)(inner, &request, &params)
                    }));
                    let response = match outcome {
                        Ok(Ok(response)) => response,
                        Ok(Err(api)) => api.into_response(&trace_id),
                        Err(_) => ApiError::new(500, "internal", "internal error")
                            .into_response(&trace_id),
                    };
                    (route.label, response)
                }
                RouteOutcome::NotFound => (
                    "other",
                    ApiError::new(404, "not_found", "no such endpoint").into_response(&trace_id),
                ),
                RouteOutcome::MethodNotAllowed => (
                    "other",
                    ApiError::new(405, "method_not_allowed", "method not allowed")
                        .into_response(&trace_id),
                ),
            }
        }
        Err(e @ ServeError::RequestTooLarge { .. }) => {
            request_incomplete = true;
            let trace_id = trace_id_hex(&trace);
            ("invalid", ApiError::from_serve(413, &e).into_response(&trace_id))
        }
        Err(ServeError::Io(_)) => {
            // Client vanished or timed out; nothing to write to.
            pse_obs::incr("serve.io_error");
            record_endpoint("io", 0, &started);
            if let Some(t) = trace.finish("io", 0) {
                inner.recorder.record(t);
            }
            return;
        }
        Err(e) => {
            let trace_id = trace_id_hex(&trace);
            ("invalid", ApiError::from_serve(400, &e).into_response(&trace_id))
        }
    };
    count_status(status);
    {
        let _write = pse_obs::span("write");
        if write_response(stream, status, content_type, body.as_ref()).is_err() {
            pse_obs::incr("serve.io_error");
        }
        let _ = stream.flush();
    }
    if request_incomplete {
        // The client is still sending; closing now would RST the socket
        // and can destroy the buffered response before the client reads
        // it. Swallow what is in flight so the close is a clean FIN.
        drain_unread(stream);
    }
    pse_obs::observe("serve.request_us", started.elapsed().as_micros() as u64);
    record_endpoint(endpoint, status, &started);
    if let Some(t) = trace.finish(endpoint, status) {
        inner.recorder.record(t);
    }
}

/// Read and discard whatever the peer already sent (briefly), so closing
/// the socket does not reset it while the response is still in transit.
fn drain_unread(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget = 1 << 20;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

type Response = (u16, &'static str, Body);

/// A typed handler failure: status, stable code, human message. The
/// connection loop renders it into the unified envelope
/// `{"error": {"code", "message", "trace_id"}}` — handlers never format
/// error bodies themselves, so every endpoint fails the same way.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
}

#[derive(serde::Serialize)]
struct ErrorDetail {
    code: String,
    message: String,
    trace_id: String,
}

#[derive(serde::Serialize)]
struct ErrorEnvelope {
    error: ErrorDetail,
}

/// The envelope bytes for one error, shared by handlers (via
/// [`ApiError::into_response`]) and the accept loop's direct 503.
fn error_body(code: &str, message: &str, trace_id: &str) -> Vec<u8> {
    let envelope = ErrorEnvelope {
        error: ErrorDetail {
            code: code.to_string(),
            message: message.to_string(),
            trace_id: trace_id.to_string(),
        },
    };
    serde_json::to_string(&envelope)
        .expect("error envelope serialization is infallible")
        .into_bytes()
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self { status, code, message: message.into() }
    }

    /// Wrap a serve-layer error, reusing its stable code and display.
    fn from_serve(status: u16, e: &ServeError) -> Self {
        Self { status, code: e.code(), message: e.to_string() }
    }

    fn into_response(self, trace_id: &str) -> Response {
        (self.status, "application/json", error_body(self.code, &self.message, trace_id).into())
    }
}

/// The request's trace id as the envelope carries it: hex when tracing
/// is on, empty when off (the envelope shape never changes).
fn trace_id_hex(trace: &pse_obs::RequestTraceGuard) -> String {
    trace.id().map(TraceId::to_hex).unwrap_or_default()
}

fn h_healthz(_inner: &Inner, _request: &Request, _params: &Params) -> HandlerResult {
    Ok((200, "text/plain", b"ok\n".to_vec().into()))
}

fn h_metrics(_inner: &Inner, _request: &Request, _params: &Params) -> HandlerResult {
    Ok((200, "application/json", pse_obs::report().to_json().into_bytes().into()))
}

fn h_products(inner: &Inner, _request: &Request, params: &Params) -> HandlerResult {
    let raw = params.get("category").unwrap_or_default();
    let Ok(category) = raw.parse::<u32>() else {
        return Err(ApiError::new(
            400,
            "bad_request",
            format!("category must be an integer, got {raw:?}"),
        ));
    };
    // The hot path: one snapshot load, one map lookup, shared bytes —
    // no shard lock, no per-request serialization. Byte-identical to
    // `json_200(&inner.store.products_in_category(..))`.
    let _probe = pse_obs::span("cache_probe");
    Ok((200, "application/json", inner.store.products_response(CategoryId(category)).into()))
}

fn h_product(inner: &Inner, request: &Request, _params: &Params) -> HandlerResult {
    let query = Query::of(request);
    let (Some(category), Some(attr), Some(key)) =
        (query.get("category"), query.get("attr"), query.get("key"))
    else {
        return Err(ApiError::new(
            400,
            "bad_request",
            "need category=<id>&attr=<name>&key=<value>",
        ));
    };
    let Ok(category) = category.parse::<u32>() else {
        return Err(ApiError::new(
            400,
            "bad_request",
            format!("category must be an integer, got {category:?}"),
        ));
    };
    let cluster_key = (CategoryId(category), attr.to_string(), normalize_key(key));
    // Like `h_products`, served from the snapshot's cached per-product
    // JSON — byte-identical to `json_200(&inner.store.product_for(..))`.
    let _lookup = pse_obs::span("lookup");
    match inner.store.product_response(&cluster_key) {
        Some(json) => Ok((200, "application/json", json.into())),
        None => Err(ApiError::new(404, "not_found", "no such product")),
    }
}

/// Echoed constraint of a `GET /search` response.
#[derive(serde::Serialize)]
struct ConstraintOut {
    phrase: String,
    attribute: String,
    value: String,
    score: f64,
    exact: bool,
}

/// Hit cap: `k` defaults to 10 and callers cannot demand unbounded
/// result assembly.
const SEARCH_K_DEFAULT: usize = 10;
const SEARCH_K_MAX: usize = 100;

fn h_search(inner: &Inner, request: &Request, _params: &Params) -> HandlerResult {
    let query = Query::of(request);
    let Some(q) = query.get("q") else {
        return Err(ApiError::new(400, "bad_request", "need q=<free-text query>"));
    };
    let k = match query.get("k") {
        None => SEARCH_K_DEFAULT,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if (1..=SEARCH_K_MAX).contains(&k) => k,
            _ => {
                return Err(ApiError::new(
                    400,
                    "bad_request",
                    format!("k must be an integer in 1..={SEARCH_K_MAX}, got {raw:?}"),
                ));
            }
        },
    };
    let outcome = inner.store.search(q, k);
    let constraints: Vec<ConstraintOut> = outcome
        .result
        .constraints
        .iter()
        .map(|c| ConstraintOut {
            phrase: c.phrase.clone(),
            attribute: c.attribute.clone(),
            value: c.value.clone(),
            score: c.score,
            exact: c.exact,
        })
        .collect();
    // Assemble around the snapshot's cached product JSON: the engine
    // parts serialize through serde, the per-hit product bytes splice
    // in verbatim — no product is re-serialized on the search path.
    let mut body = String::from("{\"category\":");
    match outcome.result.category {
        Some(c) => body.push_str(&c.0.to_string()),
        None => body.push_str("null"),
    }
    body.push_str(",\"constraints\":");
    body.push_str(&json_field(&constraints)?);
    body.push_str(",\"hits\":[");
    for (i, (hit, json)) in outcome.result.hits.iter().zip(&outcome.hit_json).enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"matched\":");
        body.push_str(&hit.matched.to_string());
        body.push_str(",\"score\":");
        body.push_str(&json_field(&hit.score)?);
        body.push_str(",\"product\":");
        body.push_str(json);
        body.push('}');
    }
    body.push_str("]}");
    Ok((200, "application/json", body.into_bytes().into()))
}

fn h_debug_requests(inner: &Inner, _request: &Request, _params: &Params) -> HandlerResult {
    Ok((200, "application/json", inner.recorder.requests_json().into_bytes().into()))
}

fn h_debug_trace(inner: &Inner, _request: &Request, params: &Params) -> HandlerResult {
    let raw = params.get("id").unwrap_or_default();
    let Some(id) = TraceId::from_hex(raw) else {
        return Err(ApiError::new(
            400,
            "bad_request",
            format!("trace id must be 1-16 hex digits, got {raw:?}"),
        ));
    };
    match inner.recorder.trace_json(id) {
        Some(json) => Ok((200, "application/json", json.into_bytes().into())),
        None => Err(ApiError::new(404, "not_found", "no such trace")),
    }
}

fn h_ingest(inner: &Inner, request: &Request, _params: &Params) -> HandlerResult {
    let offers: Vec<Offer> = {
        let _parse = pse_obs::span("parse_body");
        parse_json_body(&request.body)?
    };
    pse_obs::add("serve.ingest_offers", offers.len() as u64);
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let stats = match &inner.durability {
        Some(durability) => {
            match durable_ingest(&inner.store, durability, &inner.catalog, &offers, &provider) {
                Ok(stats) => {
                    maybe_compact(inner);
                    stats
                }
                Err(e) => return Err(durability_failed(e)),
            }
        }
        None => inner.store.ingest(&inner.catalog, &offers, &provider),
    };
    json_200(&stats)
}

fn h_retract(inner: &Inner, request: &Request, _params: &Params) -> HandlerResult {
    let ids: Vec<u64> = {
        let _parse = pse_obs::span("parse_body");
        parse_json_body(&request.body)?
    };
    let ids: Vec<OfferId> = ids.into_iter().map(OfferId).collect();
    let stats = match &inner.durability {
        Some(durability) => match durable_retract(&inner.store, durability, &inner.catalog, &ids) {
            Ok(stats) => {
                maybe_compact(inner);
                stats
            }
            Err(e) => return Err(durability_failed(e)),
        },
        None => inner.store.retract(&inner.catalog, &ids),
    };
    json_200(&stats)
}

fn h_shutdown(inner: &Inner, _request: &Request, _params: &Params) -> HandlerResult {
    inner.stop.store(true, Ordering::SeqCst);
    // Wake the acceptor so it notices; error means it already did.
    let _ = TcpStream::connect(inner.addr);
    Ok((200, "text/plain", b"shutting down\n".to_vec().into()))
}

/// A write we could not make durable is a server-side failure: the
/// record never hit the log, so the store was not mutated either.
fn durability_failed(e: ServeError) -> ApiError {
    ApiError { status: 500, code: e.code(), message: e.to_string() }
}

fn parse_json_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_request", "body is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ApiError::new(400, "bad_request", format!("body is not valid JSON: {}", e.0)))
}

fn json_200<T: serde::Serialize>(value: &T) -> HandlerResult {
    Ok((200, "application/json", json_field(value)?.into_bytes().into()))
}

/// Serialize one JSON fragment, mapping the (unreachable) failure into
/// the envelope instead of a panic.
fn json_field<T: serde::Serialize>(value: &T) -> Result<String, ApiError> {
    serde_json::to_string(value)
        .map_err(|e| ApiError::new(500, "internal", format!("serialization failed: {}", e.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_a_cap() {
        let mut d = ACCEPT_BACKOFF_START;
        let mut schedule = Vec::new();
        for _ in 0..12 {
            schedule.push(d.as_millis());
            d = next_accept_backoff(d);
        }
        assert_eq!(schedule[..9], [1, 2, 4, 8, 16, 32, 64, 128, 250]);
        assert!(schedule[9..].iter().all(|&ms| ms == 250), "capped, never grows past 250ms");
    }
}
