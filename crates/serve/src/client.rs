//! A tiny blocking HTTP/1.1 client for tests, smokes, and the load
//! generator: one request per connection, mirroring the server's
//! `Connection: close` model.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::error::ServeError;

/// Issue one request to `addr` (`host:port`) and return
/// `(status, body)`. `body` of `Some(..)` sends a `Content-Length` body
/// (used with POST).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServeError> {
    http_request_timeout(addr, method, path, body, Duration::from_secs(10))
}

/// [`http_request`] with an explicit per-socket timeout.
pub fn http_request_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A server that rejects early (413/503) may respond and close before
    // reading everything we send; treat a failed write as "the response
    // may already be waiting" and attempt the read regardless.
    let _ = stream.write_all(request.as_bytes());
    let _ = stream.flush();
    let mut raw = Vec::new();
    if let Err(e) = stream.read_to_end(&mut raw) {
        // Keep a partial response if one arrived before the error (an
        // early close can RST away the tail but leave the status line).
        if raw.is_empty() {
            return Err(e.into());
        }
    }
    let response = String::from_utf8_lossy(&raw);
    parse_response(&response)
}

/// Split a raw response into status code and body.
pub fn parse_response(response: &str) -> Result<(u16, String), ServeError> {
    let status_line = response
        .lines()
        .next()
        .ok_or_else(|| ServeError::BadResponse("empty response".to_string()))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::BadResponse(format!("bad status line {status_line:?}")))?;
    let body = match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("").is_err());
        assert!(parse_response("garbage with no status").is_err());
    }
}
