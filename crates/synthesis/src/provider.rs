//! Offer-specification providers.
//!
//! The pipeline needs attribute–value pairs for an offer. Where they come
//! from varies: the offline phase and the run-time phase both extract them
//! from landing pages ("Web-page Attribute Extraction" in Figure 4), tests
//! inject them directly, and ablations bypass extraction noise. The
//! [`SpecProvider`] trait abstracts the source.

use pse_core::{Offer, Spec};
use pse_extract::PageExtractor;

/// Source of offer specifications.
///
/// `Sync` is a supertrait: the offline bag builder and the run-time
/// pipeline extract specifications from worker threads (see `pse-par`),
/// sharing the provider by reference. Providers must therefore be
/// deterministic per offer — the pipeline's byte-identical-output
/// guarantee at any `PSE_THREADS` assumes `spec` is a pure function of
/// the offer.
pub trait SpecProvider: Sync {
    /// The specification (attribute–value pairs) of `offer`.
    fn spec(&self, offer: &Offer) -> Spec;
}

/// Provider that fetches the offer's landing page (via a caller-supplied
/// fetcher closure standing in for an HTTP client) and runs the table
/// extractor on it — the honest end-to-end path.
pub struct ExtractingProvider<F> {
    fetch: F,
    extractor: PageExtractor,
}

impl<F: Fn(&Offer) -> String> ExtractingProvider<F> {
    /// Build from a page fetcher.
    pub fn new(fetch: F) -> Self {
        Self { fetch, extractor: PageExtractor::new() }
    }

    /// Build with a custom extractor configuration.
    pub fn with_extractor(fetch: F, extractor: PageExtractor) -> Self {
        Self { fetch, extractor }
    }
}

impl<F: Fn(&Offer) -> String + Sync> SpecProvider for ExtractingProvider<F> {
    fn spec(&self, offer: &Offer) -> Spec {
        let html = (self.fetch)(offer);
        let mut spec = self.extractor.extract(&html);
        // The feed specification, when present, contributes too (Section 2:
        // pairs may come from feeds or landing pages).
        for pair in offer.spec.iter() {
            spec.push(pair.name.clone(), pair.value.clone());
        }
        spec
    }
}

/// Provider backed by an arbitrary closure (tests, cached corpora,
/// noise-free ablations).
pub struct FnProvider<F>(pub F);

impl<F: Fn(&Offer) -> Spec + Sync> SpecProvider for FnProvider<F> {
    fn spec(&self, offer: &Offer) -> Spec {
        (self.0)(offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{MerchantId, OfferId};

    fn offer_with_feed_spec() -> Offer {
        Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 100,
            image_url: None,
            category: None,
            url: "https://m.example.com/1".into(),
            title: "t".into(),
            spec: Spec::from_pairs([("Brand", "Hitachi")]),
        }
    }

    #[test]
    fn extracting_provider_merges_page_and_feed() {
        let provider = ExtractingProvider::new(|_: &Offer| {
            "<table><tr><td>RPM</td><td>7200</td></tr></table>".to_string()
        });
        let spec = provider.spec(&offer_with_feed_spec());
        assert_eq!(spec.get("RPM"), Some("7200"));
        assert_eq!(spec.get("Brand"), Some("Hitachi"));
    }

    #[test]
    fn fn_provider_passes_through() {
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let spec = provider.spec(&offer_with_feed_spec());
        assert_eq!(spec.len(), 1);
    }
}
