//! Offer-to-product title matching.
//!
//! Section 3.1: historical associations "can be obtained through various
//! methods, including the use of universal identifiers (GTIN, UPC, EAN)
//! when available, manual techniques, or automated matchers that attempt to
//! match the title of the offers to structured product records." This
//! module implements such an automated matcher, which lets a deployment
//! *bootstrap* the historical matches the offline learner needs:
//!
//! 1. identifier matching — if the offer specification carries a UPC/EAN
//!    that a catalog product carries too, the match is certain;
//! 2. title matching — otherwise, compare the offer title against product
//!    titles and specifications with TF-IDF cosine, accepting the best
//!    product when it clears a confidence margin.

use std::collections::HashMap;

use pse_core::{Catalog, CategoryId, HistoricalMatches, Offer, ProductId, Spec};
use pse_text::normalize::normalize_value;
use pse_text::tfidf::{cosine_of, TfIdfCorpus};
use pse_text::BagOfWords;

/// Configuration of the bootstrap matcher.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Identifier attributes checked for exact matches, in priority order.
    pub identifier_attributes: Vec<String>,
    /// Minimum cosine similarity for a title match to be accepted.
    pub min_similarity: f64,
    /// Minimum margin between the best and second-best product similarity;
    /// ambiguous offers stay unmatched (precision over recall, since
    /// downstream learning conditions on these matches).
    pub min_margin: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            identifier_attributes: vec!["UPC".to_string(), "MPN".to_string()],
            min_similarity: 0.4,
            min_margin: 0.05,
        }
    }
}

/// How a match was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// A shared universal identifier (exact).
    Identifier,
    /// Title similarity above threshold and margin.
    Title,
}

/// One proposed offer-to-product match.
#[derive(Debug, Clone)]
pub struct ProposedMatch {
    /// The offer.
    pub offer: pse_core::OfferId,
    /// The product it matches.
    pub product: ProductId,
    /// Cosine similarity (1.0 for identifier matches).
    pub similarity: f64,
    /// How the match was found.
    pub kind: MatchKind,
}

/// An offer-to-product matcher over one catalog.
pub struct TitleMatcher<'a> {
    catalog: &'a Catalog,
    config: MatcherConfig,
    /// Per-category TF-IDF corpus and product vectors.
    per_category: HashMap<CategoryId, CategoryIndex>,
    /// identifier value (normalized) → product, per category.
    identifiers: HashMap<(CategoryId, String), ProductId>,
}

struct CategoryIndex {
    corpus: TfIdfCorpus,
    products: Vec<(ProductId, std::collections::BTreeMap<String, f64>)>,
}

impl<'a> TitleMatcher<'a> {
    /// Build the matcher's indexes from the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_config(catalog, MatcherConfig::default())
    }

    /// Build with custom configuration.
    pub fn with_config(catalog: &'a Catalog, config: MatcherConfig) -> Self {
        let mut per_category: HashMap<CategoryId, CategoryIndex> = HashMap::new();
        let mut identifiers = HashMap::new();

        let mut bags: HashMap<CategoryId, Vec<(ProductId, BagOfWords)>> = HashMap::new();
        for product in catalog.products() {
            let mut bag = BagOfWords::new();
            bag.add_value(&product.title);
            for pair in product.spec.iter() {
                bag.add_value(&pair.value);
            }
            bags.entry(product.category).or_default().push((product.id, bag));
            for id_attr in &config.identifier_attributes {
                if let Some(v) = product.spec.get(id_attr) {
                    identifiers.insert((product.category, normalize_value(v)), product.id);
                }
            }
        }
        for (category, items) in bags {
            let mut corpus = TfIdfCorpus::new();
            for (_, bag) in &items {
                corpus.add_document(bag);
            }
            let products = items
                .into_iter()
                .map(|(pid, bag)| {
                    let v = corpus.weight_vector(&bag);
                    (pid, v)
                })
                .collect();
            per_category.insert(category, CategoryIndex { corpus, products });
        }
        Self { catalog, config, per_category, identifiers }
    }

    /// Try to match one offer. `spec` is the offer's (extracted)
    /// specification, used for identifier matching; pass an empty spec to
    /// match on the title alone.
    pub fn match_offer(&self, offer: &Offer, spec: &Spec) -> Option<ProposedMatch> {
        let category = offer.category?;

        // 1. Identifier matching.
        for id_attr in &self.config.identifier_attributes {
            for v in spec.get_all(id_attr) {
                if let Some(&product) = self.identifiers.get(&(category, normalize_value(v))) {
                    return Some(ProposedMatch {
                        offer: offer.id,
                        product,
                        similarity: 1.0,
                        kind: MatchKind::Identifier,
                    });
                }
            }
        }

        // 2. Title matching.
        let index = self.per_category.get(&category)?;
        let mut bag = BagOfWords::new();
        bag.add_value(&offer.title);
        for pair in spec.iter() {
            bag.add_value(&pair.value);
        }
        let query = index.corpus.weight_vector(&bag);
        let mut best: Option<(ProductId, f64)> = None;
        let mut second = 0.0f64;
        for (pid, pv) in &index.products {
            let sim = cosine_of(&query, pv);
            match best {
                Some((_, b)) if sim <= b => second = second.max(sim),
                _ => {
                    if let Some((_, b)) = best {
                        second = second.max(b);
                    }
                    best = Some((*pid, sim));
                }
            }
        }
        let (product, similarity) = best?;
        if similarity >= self.config.min_similarity && similarity - second >= self.config.min_margin
        {
            Some(ProposedMatch { offer: offer.id, product, similarity, kind: MatchKind::Title })
        } else {
            None
        }
    }

    /// Bootstrap a [`HistoricalMatches`] set from a batch of offers.
    /// `spec_of` supplies each offer's specification (e.g. via extraction).
    pub fn bootstrap<F>(&self, offers: &[Offer], mut spec_of: F) -> HistoricalMatches
    where
        F: FnMut(&Offer) -> Spec,
    {
        let mut matches = HistoricalMatches::new();
        for offer in offers {
            let spec = spec_of(offer);
            if let Some(m) = self.match_offer(offer, &spec) {
                matches.insert(m.offer, m.product);
            }
        }
        matches
    }

    /// The catalog this matcher indexes.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, MerchantId, OfferId, Taxonomy};

    fn setup() -> (Catalog, Vec<ProductId>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::key("UPC", AttributeKind::Identifier),
                AttributeDef::new("Brand", AttributeKind::Text),
                AttributeDef::new("Capacity", AttributeKind::Numeric),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let mut pids = Vec::new();
        for (title, upc, brand, cap) in [
            ("Seagate Barracuda 500GB Hard Drive", "111111111111", "Seagate", "500 GB"),
            ("Hitachi Deskstar 1TB Hard Drive", "222222222222", "Hitachi", "1000 GB"),
            ("Western Digital Caviar 250GB", "333333333333", "Western Digital", "250 GB"),
        ] {
            pids.push(catalog.add_product(
                cat,
                title,
                Spec::from_pairs([("UPC", upc), ("Brand", brand), ("Capacity", cap)]),
            ));
        }
        (catalog, pids)
    }

    fn offer(title: &str, cat: CategoryId, spec: Spec) -> Offer {
        Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 1,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: title.into(),
            spec,
        }
    }

    #[test]
    fn identifier_match_is_exact() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let o = offer("totally unrelated title", cat, Spec::from_pairs([("UPC", "222222222222")]));
        let m = matcher.match_offer(&o, &o.spec).unwrap();
        assert_eq!(m.product, pids[1]);
        assert_eq!(m.kind, MatchKind::Identifier);
        assert_eq!(m.similarity, 1.0);
    }

    #[test]
    fn title_match_finds_closest_product() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let o = offer("Seagate Barracuda 500 GB SATA", cat, Spec::new());
        let m = matcher.match_offer(&o, &Spec::new()).unwrap();
        assert_eq!(m.product, pids[0]);
        assert_eq!(m.kind, MatchKind::Title);
        assert!(m.similarity > 0.4);
    }

    #[test]
    fn ambiguous_titles_stay_unmatched() {
        let (catalog, _) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        // Generic words shared by every product: low similarity everywhere.
        let o = offer("Hard Drive", cat, Spec::new());
        assert!(matcher.match_offer(&o, &Spec::new()).is_none());
    }

    #[test]
    fn uncategorized_offers_are_skipped() {
        let (catalog, _) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let mut o = offer("Seagate Barracuda 500GB", CategoryId(0), Spec::new());
        o.category = None;
        assert!(matcher.match_offer(&o, &Spec::new()).is_none());
    }

    #[test]
    fn bootstrap_collects_matches() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let offers: Vec<Offer> =
            ["Seagate Barracuda 500GB drive", "Hitachi Deskstar 1TB", "mystery gadget"]
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut o = offer(t, cat, Spec::new());
                    o.id = OfferId(i as u64);
                    o
                })
                .collect();
        let matches = matcher.bootstrap(&offers, |o| o.spec.clone());
        assert_eq!(matches.product_of(OfferId(0)), Some(pids[0]));
        assert_eq!(matches.product_of(OfferId(1)), Some(pids[1]));
        assert_eq!(matches.product_of(OfferId(2)), None);
    }
}
