//! Offer-to-product title matching.
//!
//! Section 3.1: historical associations "can be obtained through various
//! methods, including the use of universal identifiers (GTIN, UPC, EAN)
//! when available, manual techniques, or automated matchers that attempt to
//! match the title of the offers to structured product records." This
//! module implements such an automated matcher, which lets a deployment
//! *bootstrap* the historical matches the offline learner needs:
//!
//! 1. identifier matching — if the offer specification carries a UPC/EAN
//!    that a catalog product carries too, the match is certain;
//! 2. title matching — otherwise, compare the offer title against product
//!    titles and specifications with TF-IDF cosine, accepting the best
//!    product when it clears a confidence margin.
//!
//! Title matching runs over an *inverted index*: per category, every
//! product's L2-normalized TF-IDF vector is split into per-token posting
//! lists, and an offer's cosine numerators are accumulated by walking the
//! postings of the offer's tokens. Only products sharing at least one token
//! with the offer are touched; all others have cosine exactly `0.0` and are
//! skipped without changing any result (see [`TitleMatcher::match_offer`]).
//! [`TitleMatcher::match_offer_naive`] keeps the exhaustive scan as the
//! reference the blocked path is checked against
//! (`experiments fig8 --verify-blocking`).

use std::collections::{BTreeMap, HashMap};

use pse_core::{Catalog, CategoryId, HistoricalMatches, Offer, ProductId, Spec};
use pse_text::intern::{Interner, InternerBuilder};
use pse_text::normalize::normalize_value;
use pse_text::sparse::{cosine_sparse, SparseCounts, SparseVec};
use pse_text::tfidf::{InternedCorpus, InternedCorpusBuilder};
use pse_text::tokenize::for_each_token;

/// Configuration of the bootstrap matcher.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Identifier attributes checked for exact matches, in priority order.
    pub identifier_attributes: Vec<String>,
    /// Minimum cosine similarity for a title match to be accepted.
    pub min_similarity: f64,
    /// Minimum margin between the best and second-best product similarity;
    /// ambiguous offers stay unmatched (precision over recall, since
    /// downstream learning conditions on these matches).
    pub min_margin: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            identifier_attributes: vec!["UPC".to_string(), "MPN".to_string()],
            min_similarity: 0.4,
            min_margin: 0.05,
        }
    }
}

/// How a match was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// A shared universal identifier (exact).
    Identifier,
    /// Title similarity above threshold and margin.
    Title,
}

/// One proposed offer-to-product match.
#[derive(Debug, Clone)]
pub struct ProposedMatch {
    /// The offer.
    pub offer: pse_core::OfferId,
    /// The product it matches.
    pub product: ProductId,
    /// Cosine similarity (1.0 for identifier matches).
    pub similarity: f64,
    /// How the match was found.
    pub kind: MatchKind,
}

/// An offer-to-product matcher over one catalog.
pub struct TitleMatcher<'a> {
    catalog: &'a Catalog,
    config: MatcherConfig,
    /// Per-category interned corpus, product vectors and posting lists.
    per_category: HashMap<CategoryId, CategoryIndex>,
    /// identifier value (normalized) → product, per category.
    identifiers: HashMap<(CategoryId, String), ProductId>,
}

struct CategoryIndex {
    interner: Interner,
    corpus: InternedCorpus,
    /// Products in catalog order with their L2-normalized TF-IDF vectors.
    products: Vec<(ProductId, SparseVec)>,
    /// `postings[sym] = [(position in products, product weight), ..]`,
    /// positions ascending.
    postings: Vec<Vec<(u32, f64)>>,
}

#[derive(Default)]
struct CategoryBuild {
    builder: InternerBuilder,
    corpus: InternedCorpusBuilder,
    /// Products with their provisional token ids (title + spec values).
    products: Vec<(ProductId, Vec<u32>)>,
}

impl<'a> TitleMatcher<'a> {
    /// Build the matcher's indexes from the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_config(catalog, MatcherConfig::default())
    }

    /// Build with custom configuration.
    pub fn with_config(catalog: &'a Catalog, config: MatcherConfig) -> Self {
        let mut identifiers = HashMap::new();
        let mut builds: HashMap<CategoryId, CategoryBuild> = HashMap::new();
        for product in catalog.products() {
            let b = builds.entry(product.category).or_default();
            let mut raw = b.builder.tokenize(&product.title);
            for pair in product.spec.iter() {
                for_each_token(&pair.value, |t| raw.push(b.builder.intern(t)));
            }
            b.corpus.add_document(raw.iter().copied());
            b.products.push((product.id, raw));
            for id_attr in &config.identifier_attributes {
                if let Some(v) = product.spec.get(id_attr) {
                    identifiers.insert((product.category, normalize_value(v)), product.id);
                }
            }
        }
        let mut per_category = HashMap::new();
        for (category, build) in builds {
            let interner = build.builder.finalize();
            let corpus = build.corpus.finalize(&interner);
            let products: Vec<(ProductId, SparseVec)> = build
                .products
                .into_iter()
                .map(|(pid, raw)| {
                    let counts = SparseCounts::from_doc(&interner.doc(&raw));
                    (pid, corpus.weight_counts(&counts))
                })
                .collect();
            let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); interner.len()];
            for (pos, (_, v)) in products.iter().enumerate() {
                for &(s, w) in v.entries() {
                    postings[s.0 as usize].push((pos as u32, w));
                }
            }
            per_category.insert(category, CategoryIndex { interner, corpus, products, postings });
        }
        Self { catalog, config, per_category, identifiers }
    }

    /// Try to match one offer. `spec` is the offer's (extracted)
    /// specification, used for identifier matching; pass an empty spec to
    /// match on the title alone.
    ///
    /// Scores only the products sharing at least one token with the offer,
    /// found through the category's inverted index. Equivalence with the
    /// exhaustive scan ([`Self::match_offer_naive`]): product weights are
    /// strictly positive, so non-candidates score exactly `0.0` and
    /// candidates strictly above it; the accumulator adds each candidate's
    /// shared-token products in ascending token order — the exact summation
    /// sequence of the sparse merge-join — and candidates are visited in
    /// product order, so best/second bookkeeping is unchanged. When *no*
    /// product shares a token, every similarity is `0.0`; that can only be
    /// accepted when `min_similarity <= 0.0`, in which case we fall back to
    /// the exhaustive scan.
    pub fn match_offer(&self, offer: &Offer, spec: &Spec) -> Option<ProposedMatch> {
        let category = offer.category?;
        if let Some(m) = self.identifier_match(category, offer, spec) {
            return Some(m);
        }
        let index = self.per_category.get(&category)?;
        let query = Self::query_vector(index, offer, spec);

        let n = index.products.len();
        let mut acc = vec![0.0f64; n];
        let mut seen = vec![false; n];
        let mut touched: Vec<u32> = Vec::new();
        for &(s, wq) in query.entries() {
            for &(pos, wp) in &index.postings[s.0 as usize] {
                acc[pos as usize] += wq * wp;
                if !seen[pos as usize] {
                    seen[pos as usize] = true;
                    touched.push(pos);
                }
            }
        }
        touched.sort_unstable();
        pse_obs::add("match.block.candidates", touched.len() as u64);
        pse_obs::add("match.block.skipped", (n - touched.len()) as u64);
        pse_obs::observe("match.block.candidates_per_offer", touched.len() as u64);

        if touched.is_empty() {
            if self.config.min_similarity > 0.0 {
                return None;
            }
            // Degenerate configuration: a 0.0 similarity could be accepted,
            // so the skipped products matter. Reproduce the full scan.
            return self.scan_products(index, offer, &query);
        }
        let mut best: Option<(ProductId, f64)> = None;
        let mut second = 0.0f64;
        for &pos in &touched {
            let sim = acc[pos as usize].clamp(0.0, 1.0);
            let pid = index.products[pos as usize].0;
            match best {
                Some((_, b)) if sim <= b => second = second.max(sim),
                _ => {
                    if let Some((_, b)) = best {
                        second = second.max(b);
                    }
                    best = Some((pid, sim));
                }
            }
        }
        self.accept(offer, best, second)
    }

    /// Reference matcher: identical identifier handling, then an exhaustive
    /// cosine scan over every product of the category. Kept as the oracle
    /// for the blocked path (`experiments fig8 --verify-blocking` and the
    /// equivalence tests).
    pub fn match_offer_naive(&self, offer: &Offer, spec: &Spec) -> Option<ProposedMatch> {
        let category = offer.category?;
        if let Some(m) = self.identifier_match(category, offer, spec) {
            return Some(m);
        }
        let index = self.per_category.get(&category)?;
        let query = Self::query_vector(index, offer, spec);
        self.scan_products(index, offer, &query)
    }

    fn identifier_match(
        &self,
        category: CategoryId,
        offer: &Offer,
        spec: &Spec,
    ) -> Option<ProposedMatch> {
        for id_attr in &self.config.identifier_attributes {
            for v in spec.get_all(id_attr) {
                if let Some(&product) = self.identifiers.get(&(category, normalize_value(v))) {
                    return Some(ProposedMatch {
                        offer: offer.id,
                        product,
                        similarity: 1.0,
                        kind: MatchKind::Identifier,
                    });
                }
            }
        }
        None
    }

    /// The offer's L2-normalized TF-IDF vector over the category vocabulary.
    ///
    /// Token counts are gathered in a `BTreeMap<String, u64>` so the norm
    /// accumulates over *all* tokens — including out-of-vocabulary ones,
    /// which have `df = 0` but still contribute to the norm — in sorted
    /// string order, bit-identical to the historical
    /// `TfIdfCorpus::weight_vector` of the offer's bag. Only in-vocabulary
    /// tokens are emitted (out-of-vocabulary weights multiply a product
    /// weight of zero in every dot product).
    fn query_vector(index: &CategoryIndex, offer: &Offer, spec: &Spec) -> SparseVec {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        {
            let mut tally = |t: &str| {
                if let Some(c) = counts.get_mut(t) {
                    *c += 1;
                } else {
                    counts.insert(t.to_string(), 1);
                }
            };
            for_each_token(&offer.title, &mut tally);
            for pair in spec.iter() {
                for_each_token(&pair.value, &mut tally);
            }
        }
        let weights: Vec<_> = counts
            .iter()
            .map(|(t, &c)| {
                let sym = index.interner.lookup(t);
                let idf = match sym {
                    Some(s) => index.corpus.idf(s),
                    None => index.corpus.idf_of_df(0),
                };
                (sym, c as f64 * idf)
            })
            .collect();
        let norm = weights.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let mut entries = Vec::new();
        if norm > 0.0 {
            for (sym, w) in weights {
                if let Some(s) = sym {
                    entries.push((s, w / norm));
                }
            }
        }
        SparseVec::from_sorted(entries)
    }

    fn scan_products(
        &self,
        index: &CategoryIndex,
        offer: &Offer,
        query: &SparseVec,
    ) -> Option<ProposedMatch> {
        let mut best: Option<(ProductId, f64)> = None;
        let mut second = 0.0f64;
        for (pid, pv) in &index.products {
            let sim = cosine_sparse(query, pv);
            match best {
                Some((_, b)) if sim <= b => second = second.max(sim),
                _ => {
                    if let Some((_, b)) = best {
                        second = second.max(b);
                    }
                    best = Some((*pid, sim));
                }
            }
        }
        self.accept(offer, best, second)
    }

    fn accept(
        &self,
        offer: &Offer,
        best: Option<(ProductId, f64)>,
        second: f64,
    ) -> Option<ProposedMatch> {
        let (product, similarity) = best?;
        if similarity >= self.config.min_similarity && similarity - second >= self.config.min_margin
        {
            Some(ProposedMatch { offer: offer.id, product, similarity, kind: MatchKind::Title })
        } else {
            None
        }
    }

    /// Bootstrap a [`HistoricalMatches`] set from a batch of offers.
    /// `spec_of` supplies each offer's specification (e.g. via extraction).
    pub fn bootstrap<F>(&self, offers: &[Offer], mut spec_of: F) -> HistoricalMatches
    where
        F: FnMut(&Offer) -> Spec,
    {
        let _span = pse_obs::span("match.bootstrap");
        // Counters may legitimately end at zero (e.g. every offer matched
        // by identifier); seed them so reports always carry them alongside
        // the span.
        pse_obs::seed("match.block.candidates");
        pse_obs::seed("match.block.skipped");
        let mut matches = HistoricalMatches::new();
        for offer in offers {
            let spec = spec_of(offer);
            if let Some(m) = self.match_offer(offer, &spec) {
                matches.insert(m.offer, m.product);
            }
        }
        matches
    }

    /// The catalog this matcher indexes.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, MerchantId, OfferId, Taxonomy};

    fn setup() -> (Catalog, Vec<ProductId>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::key("UPC", AttributeKind::Identifier),
                AttributeDef::new("Brand", AttributeKind::Text),
                AttributeDef::new("Capacity", AttributeKind::Numeric),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let mut pids = Vec::new();
        for (title, upc, brand, cap) in [
            ("Seagate Barracuda 500GB Hard Drive", "111111111111", "Seagate", "500 GB"),
            ("Hitachi Deskstar 1TB Hard Drive", "222222222222", "Hitachi", "1000 GB"),
            ("Western Digital Caviar 250GB", "333333333333", "Western Digital", "250 GB"),
        ] {
            pids.push(catalog.add_product(
                cat,
                title,
                Spec::from_pairs([("UPC", upc), ("Brand", brand), ("Capacity", cap)]),
            ));
        }
        (catalog, pids)
    }

    fn offer(title: &str, cat: CategoryId, spec: Spec) -> Offer {
        Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 1,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: title.into(),
            spec,
        }
    }

    #[test]
    fn identifier_match_is_exact() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let o = offer("totally unrelated title", cat, Spec::from_pairs([("UPC", "222222222222")]));
        let m = matcher.match_offer(&o, &o.spec).unwrap();
        assert_eq!(m.product, pids[1]);
        assert_eq!(m.kind, MatchKind::Identifier);
        assert_eq!(m.similarity, 1.0);
    }

    #[test]
    fn title_match_finds_closest_product() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let o = offer("Seagate Barracuda 500 GB SATA", cat, Spec::new());
        let m = matcher.match_offer(&o, &Spec::new()).unwrap();
        assert_eq!(m.product, pids[0]);
        assert_eq!(m.kind, MatchKind::Title);
        assert!(m.similarity > 0.4);
    }

    #[test]
    fn ambiguous_titles_stay_unmatched() {
        let (catalog, _) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        // Generic words shared by every product: low similarity everywhere.
        let o = offer("Hard Drive", cat, Spec::new());
        assert!(matcher.match_offer(&o, &Spec::new()).is_none());
    }

    #[test]
    fn uncategorized_offers_are_skipped() {
        let (catalog, _) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let mut o = offer("Seagate Barracuda 500GB", CategoryId(0), Spec::new());
        o.category = None;
        assert!(matcher.match_offer(&o, &Spec::new()).is_none());
    }

    #[test]
    fn bootstrap_collects_matches() {
        let (catalog, pids) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        let offers: Vec<Offer> =
            ["Seagate Barracuda 500GB drive", "Hitachi Deskstar 1TB", "mystery gadget"]
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut o = offer(t, cat, Spec::new());
                    o.id = OfferId(i as u64);
                    o
                })
                .collect();
        let matches = matcher.bootstrap(&offers, |o| o.spec.clone());
        assert_eq!(matches.product_of(OfferId(0)), Some(pids[0]));
        assert_eq!(matches.product_of(OfferId(1)), Some(pids[1]));
        assert_eq!(matches.product_of(OfferId(2)), None);
    }

    /// The blocked matcher must agree with the exhaustive reference on every
    /// outcome, bit-for-bit on the similarity.
    #[test]
    fn blocked_agrees_with_naive_scan() {
        let (catalog, _) = setup();
        let matcher = TitleMatcher::new(&catalog);
        let cat = catalog.products().next().unwrap().category;
        for title in [
            "Seagate Barracuda 500 GB SATA",
            "Hard Drive",
            "mystery gadget with zero overlap",
            "hitachi deskstar",
            "",
            "größe écran", // out-of-vocabulary non-ASCII
        ] {
            let o = offer(title, cat, Spec::new());
            let blocked = matcher.match_offer(&o, &Spec::new());
            let naive = matcher.match_offer_naive(&o, &Spec::new());
            match (&blocked, &naive) {
                (None, None) => {}
                (Some(b), Some(n)) => {
                    assert_eq!(b.product, n.product, "title={title}");
                    assert_eq!(b.similarity.to_bits(), n.similarity.to_bits(), "title={title}");
                    assert_eq!(b.kind, n.kind, "title={title}");
                }
                _ => panic!("blocked={blocked:?} naive={naive:?} for title={title}"),
            }
        }
    }

    /// With `min_similarity <= 0`, an offer sharing no token still matches
    /// through the exhaustive fallback, exactly like the reference.
    #[test]
    fn zero_threshold_falls_back_to_full_scan() {
        let (catalog, _) = setup();
        let config = MatcherConfig { min_similarity: 0.0, min_margin: 0.0, ..Default::default() };
        let matcher = TitleMatcher::with_config(&catalog, config);
        let cat = catalog.products().next().unwrap().category;
        let o = offer("zero overlap whatsoever", cat, Spec::new());
        let blocked = matcher.match_offer(&o, &Spec::new());
        let naive = matcher.match_offer_naive(&o, &Spec::new());
        let (b, n) = (blocked.unwrap(), naive.unwrap());
        assert_eq!(b.product, n.product);
        assert_eq!(b.similarity.to_bits(), n.similarity.to_bits());
        assert_eq!(b.similarity, 0.0);
    }
}
