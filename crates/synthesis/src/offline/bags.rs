//! Match-conditioned bags of words — the raw material of the six
//! distributional-similarity features.
//!
//! Section 3.1: "our Attribute Correspondence Creation component obtains
//! value distributions only from offers and products that match to each
//! other." For every grouping of Table 1 we collect:
//!
//! * offer-side bags: token multisets of the values of each merchant
//!   attribute, keyed by (merchant, category), category, or merchant;
//! * product-side *sets*: the catalog products matched by the offers of the
//!   group (bags over their attribute values are materialized lazily by the
//!   feature computer, per candidate catalog attribute).
//!
//! The unconditioned variant (the "No matching" baseline of Figure 7) uses
//! all offers and all catalog products of the category instead.
//!
//! All bags are interned: every token (offer values and the spec values of
//! every referenced product) goes through one [`Interner`], each value is
//! tokenized exactly once, and bags are [`SparseCounts`] over the frozen
//! symbol table. Because final symbols are assigned in sorted string order,
//! downstream divergence sums are bit-identical to the historical
//! `BagOfWords`-based index (see `pse_text::intern`).

use std::collections::{HashMap, HashSet};

use pse_core::{Catalog, CategoryId, HistoricalMatches, MerchantId, Offer, ProductId, Spec};
use pse_text::intern::{Interner, InternerBuilder, Sym, TokenDoc};
use pse_text::normalize::normalize_attribute_name;
use pse_text::sparse::SparseCounts;
use pse_text::tokenize::for_each_token;

use crate::provider::SpecProvider;

/// Offer-side bags and product-side match sets for all three groupings.
#[derive(Debug, Default)]
pub struct FeatureIndex {
    /// The frozen symbol table every bag in this index is expressed in.
    pub interner: Interner,
    /// (merchant, category) → merchant attribute (normalized) → value bag.
    pub offer_mc: HashMap<(MerchantId, CategoryId), HashMap<String, SparseCounts>>,
    /// category → merchant attribute (normalized) → value bag.
    pub offer_c: HashMap<CategoryId, HashMap<String, SparseCounts>>,
    /// merchant → merchant attribute (normalized) → value bag.
    pub offer_m: HashMap<MerchantId, HashMap<String, SparseCounts>>,
    /// Products matched by the offers of each (merchant, category).
    pub products_mc: HashMap<(MerchantId, CategoryId), HashSet<ProductId>>,
    /// Products matched by the offers of each category.
    pub products_c: HashMap<CategoryId, HashSet<ProductId>>,
    /// Products matched by the offers of each merchant.
    pub products_m: HashMap<MerchantId, HashSet<ProductId>>,
    /// Interned spec values (attribute surface name, token doc) of every
    /// product referenced by a product set, in spec order.
    product_values: HashMap<ProductId, Vec<(String, TokenDoc)>>,
}

/// Accumulates offer bags with *provisional* token ids while the vocabulary
/// is still growing; [`IndexBuilder::finish`] interns the catalog side,
/// freezes the symbol table and remaps everything onto it.
/// A product's spec with values as provisional token ids, pending the
/// vocabulary freeze.
type ProvisionalSpec = Vec<(String, Vec<u32>)>;

#[derive(Default)]
struct IndexBuilder {
    interner: InternerBuilder,
    offer_mc: HashMap<(MerchantId, CategoryId), HashMap<String, HashMap<u32, u64>>>,
    offer_c: HashMap<CategoryId, HashMap<String, HashMap<u32, u64>>>,
    offer_m: HashMap<MerchantId, HashMap<String, HashMap<u32, u64>>>,
    toks: Vec<u32>,
}

impl IndexBuilder {
    fn add_spec(&mut self, offer: &Offer, category: CategoryId, spec: &Spec) {
        for pair in spec.iter() {
            let name = normalize_attribute_name(&pair.name);
            if name.is_empty() {
                continue;
            }
            // Tokenize + intern the value once, then fold the provisional
            // ids into all three groupings.
            self.toks.clear();
            let (toks, interner) = (&mut self.toks, &mut self.interner);
            for_each_token(&pair.value, |t| toks.push(interner.intern(t)));
            let bags = [
                self.offer_mc
                    .entry((offer.merchant, category))
                    .or_default()
                    .entry(name.clone())
                    .or_default(),
                self.offer_c.entry(category).or_default().entry(name.clone()).or_default(),
                self.offer_m.entry(offer.merchant).or_default().entry(name).or_default(),
            ];
            for bag in bags {
                for &t in &self.toks {
                    *bag.entry(t).or_insert(0) += 1;
                }
            }
        }
    }

    /// Intern the spec values of every product any grouping references,
    /// freeze the vocabulary and remap all provisional bags onto it.
    fn finish(
        mut self,
        catalog: &Catalog,
        products_mc: HashMap<(MerchantId, CategoryId), HashSet<ProductId>>,
        products_c: HashMap<CategoryId, HashSet<ProductId>>,
        products_m: HashMap<MerchantId, HashSet<ProductId>>,
    ) -> FeatureIndex {
        let mut referenced: HashSet<ProductId> = HashSet::new();
        for set in products_mc.values().chain(products_c.values()).chain(products_m.values()) {
            referenced.extend(set.iter().copied());
        }
        // Historical matches may reference products absent from the catalog
        // (the match source is external); those contribute empty bags.
        let by_id: HashMap<ProductId, &pse_core::Product> =
            catalog.products().map(|p| (p.id, p)).collect();
        let mut raw_values: Vec<(ProductId, ProvisionalSpec)> = Vec::new();
        for &pid in &referenced {
            let Some(product) = by_id.get(&pid) else { continue };
            let pairs = product
                .spec
                .iter()
                .map(|pair| (pair.name.clone(), self.interner.tokenize(&pair.value)))
                .collect();
            raw_values.push((pid, pairs));
        }
        let interner = self.interner.finalize();
        let convert = |m: HashMap<u32, u64>| -> SparseCounts {
            SparseCounts::from_unsorted(m.into_iter().map(|(p, c)| (interner.sym(p), c)).collect())
        };
        let convert_attrs = |m: HashMap<String, HashMap<u32, u64>>| {
            m.into_iter().map(|(name, bag)| (name, convert(bag))).collect()
        };
        let offer_mc = self.offer_mc.into_iter().map(|(k, m)| (k, convert_attrs(m))).collect();
        let offer_c = self.offer_c.into_iter().map(|(k, m)| (k, convert_attrs(m))).collect();
        let offer_m = self.offer_m.into_iter().map(|(k, m)| (k, convert_attrs(m))).collect();
        let product_values = raw_values
            .into_iter()
            .map(|(pid, pairs)| {
                let docs = pairs.into_iter().map(|(n, raw)| (n, interner.doc(&raw))).collect();
                (pid, docs)
            })
            .collect();
        FeatureIndex {
            interner,
            offer_mc,
            offer_c,
            offer_m,
            products_mc,
            products_c,
            products_m,
            product_values,
        }
    }
}

impl FeatureIndex {
    /// Build the index from historical offer-to-product matches: only
    /// matched offers contribute, and product sets contain only matched
    /// products (the paper's approach).
    pub fn build_matched<P: SpecProvider>(
        catalog: &Catalog,
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> Self {
        let _obs = pse_obs::span("offline.bags");
        let contributing: Vec<(&Offer, ProductId, CategoryId)> = offers
            .iter()
            .filter_map(|offer| {
                let product = historical.product_of(offer.id)?;
                let category = offer.category?;
                Some((offer, product, category))
            })
            .collect();
        // Extraction (page fetch + parse) dominates; run it across worker
        // threads and fold the specs into the bags in offer order, so the
        // index is identical at any thread count.
        pse_obs::add("offline.historical_offers", contributing.len() as u64);
        let specs =
            pse_par::par_map_chunked(&contributing, 16, |(offer, _, _)| provider.spec(offer));
        let mut builder = IndexBuilder::default();
        let mut products_mc: HashMap<(MerchantId, CategoryId), HashSet<ProductId>> = HashMap::new();
        let mut products_c: HashMap<CategoryId, HashSet<ProductId>> = HashMap::new();
        let mut products_m: HashMap<MerchantId, HashSet<ProductId>> = HashMap::new();
        for ((offer, product, category), spec) in contributing.iter().zip(&specs) {
            builder.add_spec(offer, *category, spec);
            products_mc.entry((offer.merchant, *category)).or_default().insert(*product);
            products_c.entry(*category).or_default().insert(*product);
            products_m.entry(offer.merchant).or_default().insert(*product);
        }
        builder.finish(catalog, products_mc, products_c, products_m)
    }

    /// Build the unconditioned index (Figure 7 baseline): every offer
    /// contributes, and the product sets are *all* catalog products of the
    /// relevant categories.
    pub fn build_unconditioned<P: SpecProvider>(
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Self {
        let _obs = pse_obs::span("offline.bags");
        let contributing: Vec<(&Offer, CategoryId)> = offers
            .iter()
            .filter_map(|offer| offer.category.map(|category| (offer, category)))
            .collect();
        let specs = pse_par::par_map_chunked(&contributing, 16, |(offer, _)| provider.spec(offer));
        let mut builder = IndexBuilder::default();
        let mut merchant_categories: HashMap<MerchantId, HashSet<CategoryId>> = HashMap::new();
        let mut merchant_category_pairs: HashSet<(MerchantId, CategoryId)> = HashSet::new();
        let mut categories_seen: HashSet<CategoryId> = HashSet::new();
        for ((offer, category), spec) in contributing.iter().zip(&specs) {
            builder.add_spec(offer, *category, spec);
            merchant_categories.entry(offer.merchant).or_default().insert(*category);
            categories_seen.insert(*category);
        }
        for key in builder.offer_mc.keys() {
            merchant_category_pairs.insert(*key);
        }
        let mut products_c: HashMap<CategoryId, HashSet<ProductId>> = HashMap::new();
        for &category in &categories_seen {
            let all: HashSet<ProductId> = catalog.products_in(category).map(|p| p.id).collect();
            products_c.insert(category, all);
        }
        let mut products_mc: HashMap<(MerchantId, CategoryId), HashSet<ProductId>> = HashMap::new();
        for (merchant, category) in merchant_category_pairs {
            products_mc.insert((merchant, category), products_c[&category].clone());
        }
        let mut products_m: HashMap<MerchantId, HashSet<ProductId>> = HashMap::new();
        for (merchant, cats) in merchant_categories {
            let mut set = HashSet::new();
            for c in cats {
                set.extend(products_c[&c].iter().copied());
            }
            products_m.insert(merchant, set);
        }
        builder.finish(catalog, products_mc, products_c, products_m)
    }

    /// Bag of the values of catalog attribute `attr` (surface form) over a
    /// set of products. The interned counterpart of
    /// [`crate::offline::features::product_bag`]: counting commutes, so the
    /// `HashSet` iteration order is immaterial. Products the index never
    /// saw (not referenced by any product set) contribute nothing.
    pub fn product_counts(&self, products: &HashSet<ProductId>, attr: &str) -> SparseCounts {
        let mut acc: HashMap<Sym, u64> = HashMap::new();
        for pid in products {
            if let Some(pairs) = self.product_values.get(pid) {
                if let Some((_, doc)) = pairs.iter().find(|(n, _)| n == attr) {
                    for &s in doc.syms() {
                        *acc.entry(s).or_insert(0) += 1;
                    }
                }
            }
        }
        SparseCounts::from_unsorted(acc.into_iter().collect())
    }

    /// The (merchant, category) groups with at least one offer attribute,
    /// in deterministic order.
    pub fn merchant_category_groups(&self) -> Vec<(MerchantId, CategoryId)> {
        let mut keys: Vec<_> = self.offer_mc.keys().copied().collect();
        keys.sort();
        keys
    }

    /// Merchant attribute names observed for a (merchant, category), in
    /// deterministic order.
    pub fn merchant_attributes(&self, merchant: MerchantId, category: CategoryId) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .offer_mc
            .get(&(merchant, category))
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{OfferId, Taxonomy};

    fn offer(id: u64, merchant: u32, category: u32, pairs: &[(&str, &str)]) -> Offer {
        Offer {
            id: OfferId(id),
            merchant: MerchantId(merchant),
            price_cents: 100,
            image_url: None,
            category: Some(CategoryId(category)),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        }
    }

    fn provider() -> FnProvider<impl Fn(&Offer) -> Spec> {
        FnProvider(|o: &Offer| o.spec.clone())
    }

    fn count(index: &FeatureIndex, bag: &SparseCounts, token: &str) -> u64 {
        index.interner.lookup(token).map_or(0, |s| bag.count(s))
    }

    #[test]
    fn matched_index_only_uses_matched_offers() {
        let catalog = Catalog::new(Taxonomy::new());
        let offers = vec![
            offer(0, 0, 0, &[("RPM", "7200")]),
            offer(1, 0, 0, &[("RPM", "5400")]),
            offer(2, 1, 0, &[("Speed", "7200")]),
        ];
        let mut hist = HistoricalMatches::new();
        hist.insert(OfferId(0), ProductId(10));
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider());
        let bag = &index.offer_mc[&(MerchantId(0), CategoryId(0))]["rpm"];
        assert_eq!(count(&index, bag, "7200"), 1);
        assert_eq!(count(&index, bag, "5400"), 0, "unmatched offer excluded");
        assert!(!index.offer_mc.contains_key(&(MerchantId(1), CategoryId(0))));
        assert_eq!(index.products_c[&CategoryId(0)], HashSet::from([ProductId(10)]));
    }

    #[test]
    fn groupings_aggregate_correctly() {
        let catalog = Catalog::new(Taxonomy::new());
        let offers = vec![
            offer(0, 0, 0, &[("RPM", "7200")]),
            offer(1, 1, 0, &[("RPM", "5400")]),
            offer(2, 0, 1, &[("RPM", "10000")]),
        ];
        let mut hist = HistoricalMatches::new();
        for i in 0..3 {
            hist.insert(OfferId(i), ProductId(i));
        }
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider());
        // Category grouping merges merchants 0 and 1 within category 0.
        let c_bag = &index.offer_c[&CategoryId(0)]["rpm"];
        assert_eq!(c_bag.total(), 2);
        // Merchant grouping merges categories 0 and 1 for merchant 0.
        let m_bag = &index.offer_m[&MerchantId(0)]["rpm"];
        assert_eq!(m_bag.total(), 2);
        assert_eq!(index.products_m[&MerchantId(0)].len(), 2);
    }

    #[test]
    fn unconditioned_index_uses_all_offers_and_products() {
        use pse_core::{AttributeDef, AttributeKind, CategorySchema};
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("T");
        let cat = tax.add_leaf(
            top,
            "C",
            CategorySchema::from_attributes([AttributeDef::new("Speed", AttributeKind::Numeric)]),
        );
        let mut catalog = Catalog::new(tax);
        for i in 0..3 {
            catalog.add_product(cat, format!("p{i}"), Spec::from_pairs([("Speed", "7200")]));
        }
        let offers =
            vec![offer(0, 0, cat.0, &[("RPM", "7200")]), offer(1, 0, cat.0, &[("RPM", "5400")])];
        let index = FeatureIndex::build_unconditioned(&catalog, &offers, &provider());
        let bag = &index.offer_mc[&(MerchantId(0), cat)]["rpm"];
        assert_eq!(bag.total(), 2, "all offers contribute");
        assert_eq!(index.products_c[&cat].len(), 3, "all products included");
        assert_eq!(index.products_mc[&(MerchantId(0), cat)].len(), 3);
        // Product values are interned for the lazily built product bags.
        let counts = index.product_counts(&index.products_c[&cat], "Speed");
        assert_eq!(counts.total(), 3);
        assert_eq!(count(&index, &counts, "7200"), 3);
    }

    #[test]
    fn product_counts_ignores_unknown_products_and_attrs() {
        let catalog = Catalog::new(Taxonomy::new());
        let offers = vec![offer(0, 0, 0, &[("RPM", "7200")])];
        let mut hist = HistoricalMatches::new();
        hist.insert(OfferId(0), ProductId(99));
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider());
        // ProductId(99) is not in the (empty) catalog: empty bag, no panic.
        let counts = index.product_counts(&HashSet::from([ProductId(99)]), "Speed");
        assert!(counts.is_empty());
    }

    #[test]
    fn deterministic_enumeration() {
        let catalog = Catalog::new(Taxonomy::new());
        let offers = vec![offer(0, 2, 0, &[("B", "1"), ("A", "2")]), offer(1, 1, 3, &[("Z", "1")])];
        let mut hist = HistoricalMatches::new();
        hist.insert(OfferId(0), ProductId(0));
        hist.insert(OfferId(1), ProductId(1));
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider());
        assert_eq!(
            index.merchant_category_groups(),
            vec![(MerchantId(1), CategoryId(3)), (MerchantId(2), CategoryId(0))]
        );
        assert_eq!(index.merchant_attributes(MerchantId(2), CategoryId(0)), ["a", "b"]);
        assert!(index.merchant_attributes(MerchantId(9), CategoryId(9)).is_empty());
    }
}
