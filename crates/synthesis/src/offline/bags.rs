//! Match-conditioned bags of words — the raw material of the six
//! distributional-similarity features.
//!
//! Section 3.1: "our Attribute Correspondence Creation component obtains
//! value distributions only from offers and products that match to each
//! other." For every grouping of Table 1 we collect:
//!
//! * offer-side bags: token multisets of the values of each merchant
//!   attribute, keyed by (merchant, category), category, or merchant;
//! * product-side *sets*: the catalog products matched by the offers of the
//!   group (bags over their attribute values are materialized lazily by the
//!   feature computer, per candidate catalog attribute).
//!
//! The unconditioned variant (the "No matching" baseline of Figure 7) uses
//! all offers and all catalog products of the category instead.

use std::collections::{HashMap, HashSet};

use pse_core::{Catalog, CategoryId, HistoricalMatches, MerchantId, Offer, ProductId};
use pse_text::normalize::normalize_attribute_name;
use pse_text::BagOfWords;

use crate::provider::SpecProvider;

/// Offer-side bags and product-side match sets for all three groupings.
#[derive(Debug, Default)]
pub struct FeatureIndex {
    /// (merchant, category) → merchant attribute (normalized) → value bag.
    pub offer_mc: HashMap<(MerchantId, CategoryId), HashMap<String, BagOfWords>>,
    /// category → merchant attribute (normalized) → value bag.
    pub offer_c: HashMap<CategoryId, HashMap<String, BagOfWords>>,
    /// merchant → merchant attribute (normalized) → value bag.
    pub offer_m: HashMap<MerchantId, HashMap<String, BagOfWords>>,
    /// Products matched by the offers of each (merchant, category).
    pub products_mc: HashMap<(MerchantId, CategoryId), HashSet<ProductId>>,
    /// Products matched by the offers of each category.
    pub products_c: HashMap<CategoryId, HashSet<ProductId>>,
    /// Products matched by the offers of each merchant.
    pub products_m: HashMap<MerchantId, HashSet<ProductId>>,
}

impl FeatureIndex {
    /// Build the index from historical offer-to-product matches: only
    /// matched offers contribute, and product sets contain only matched
    /// products (the paper's approach).
    pub fn build_matched<P: SpecProvider>(
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> Self {
        let _obs = pse_obs::span("offline.bags");
        let contributing: Vec<(&Offer, ProductId, CategoryId)> = offers
            .iter()
            .filter_map(|offer| {
                let product = historical.product_of(offer.id)?;
                let category = offer.category?;
                Some((offer, product, category))
            })
            .collect();
        // Extraction (page fetch + parse) dominates; run it across worker
        // threads and fold the specs into the bags in offer order, so the
        // index is identical at any thread count.
        pse_obs::add("offline.historical_offers", contributing.len() as u64);
        let specs =
            pse_par::par_map_chunked(&contributing, 16, |(offer, _, _)| provider.spec(offer));
        let mut index = Self::default();
        for ((offer, product, category), spec) in contributing.iter().zip(&specs) {
            index.add_spec(offer, *category, spec);
            index.products_mc.entry((offer.merchant, *category)).or_default().insert(*product);
            index.products_c.entry(*category).or_default().insert(*product);
            index.products_m.entry(offer.merchant).or_default().insert(*product);
        }
        index
    }

    /// Build the unconditioned index (Figure 7 baseline): every offer
    /// contributes, and the product sets are *all* catalog products of the
    /// relevant categories.
    pub fn build_unconditioned<P: SpecProvider>(
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> Self {
        let _obs = pse_obs::span("offline.bags");
        let contributing: Vec<(&Offer, CategoryId)> = offers
            .iter()
            .filter_map(|offer| offer.category.map(|category| (offer, category)))
            .collect();
        let specs = pse_par::par_map_chunked(&contributing, 16, |(offer, _)| provider.spec(offer));
        let mut index = Self::default();
        let mut merchant_categories: HashMap<MerchantId, HashSet<CategoryId>> = HashMap::new();
        let mut categories_seen: HashSet<CategoryId> = HashSet::new();
        for ((offer, category), spec) in contributing.iter().zip(&specs) {
            index.add_spec(offer, *category, spec);
            merchant_categories.entry(offer.merchant).or_default().insert(*category);
            categories_seen.insert(*category);
        }
        for &category in &categories_seen {
            let all: HashSet<ProductId> = catalog.products_in(category).map(|p| p.id).collect();
            index.products_c.insert(category, all);
        }
        for ((merchant, category), _) in index.offer_mc.iter() {
            index.products_mc.insert((*merchant, *category), index.products_c[category].clone());
        }
        for (merchant, cats) in merchant_categories {
            let mut set = HashSet::new();
            for c in cats {
                set.extend(index.products_c[&c].iter().copied());
            }
            index.products_m.insert(merchant, set);
        }
        index
    }

    fn add_spec(&mut self, offer: &Offer, category: CategoryId, spec: &pse_core::Spec) {
        for pair in spec.iter() {
            let name = normalize_attribute_name(&pair.name);
            if name.is_empty() {
                continue;
            }
            self.offer_mc
                .entry((offer.merchant, category))
                .or_default()
                .entry(name.clone())
                .or_default()
                .add_value(&pair.value);
            self.offer_c
                .entry(category)
                .or_default()
                .entry(name.clone())
                .or_default()
                .add_value(&pair.value);
            self.offer_m
                .entry(offer.merchant)
                .or_default()
                .entry(name)
                .or_default()
                .add_value(&pair.value);
        }
    }

    /// The (merchant, category) groups with at least one offer attribute,
    /// in deterministic order.
    pub fn merchant_category_groups(&self) -> Vec<(MerchantId, CategoryId)> {
        let mut keys: Vec<_> = self.offer_mc.keys().copied().collect();
        keys.sort();
        keys
    }

    /// Merchant attribute names observed for a (merchant, category), in
    /// deterministic order.
    pub fn merchant_attributes(&self, merchant: MerchantId, category: CategoryId) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .offer_mc
            .get(&(merchant, category))
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{OfferId, Spec};

    fn offer(id: u64, merchant: u32, category: u32, pairs: &[(&str, &str)]) -> Offer {
        Offer {
            id: OfferId(id),
            merchant: MerchantId(merchant),
            price_cents: 100,
            image_url: None,
            category: Some(CategoryId(category)),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        }
    }

    fn provider() -> FnProvider<impl Fn(&Offer) -> Spec> {
        FnProvider(|o: &Offer| o.spec.clone())
    }

    #[test]
    fn matched_index_only_uses_matched_offers() {
        let offers = vec![
            offer(0, 0, 0, &[("RPM", "7200")]),
            offer(1, 0, 0, &[("RPM", "5400")]),
            offer(2, 1, 0, &[("Speed", "7200")]),
        ];
        let mut hist = HistoricalMatches::new();
        hist.insert(OfferId(0), ProductId(10));
        let index = FeatureIndex::build_matched(&offers, &hist, &provider());
        let bag = &index.offer_mc[&(MerchantId(0), CategoryId(0))]["rpm"];
        assert_eq!(bag.count("7200"), 1);
        assert_eq!(bag.count("5400"), 0, "unmatched offer excluded");
        assert!(!index.offer_mc.contains_key(&(MerchantId(1), CategoryId(0))));
        assert_eq!(index.products_c[&CategoryId(0)], HashSet::from([ProductId(10)]));
    }

    #[test]
    fn groupings_aggregate_correctly() {
        let offers = vec![
            offer(0, 0, 0, &[("RPM", "7200")]),
            offer(1, 1, 0, &[("RPM", "5400")]),
            offer(2, 0, 1, &[("RPM", "10000")]),
        ];
        let mut hist = HistoricalMatches::new();
        for i in 0..3 {
            hist.insert(OfferId(i), ProductId(i));
        }
        let index = FeatureIndex::build_matched(&offers, &hist, &provider());
        // Category grouping merges merchants 0 and 1 within category 0.
        let c_bag = &index.offer_c[&CategoryId(0)]["rpm"];
        assert_eq!(c_bag.total(), 2);
        // Merchant grouping merges categories 0 and 1 for merchant 0.
        let m_bag = &index.offer_m[&MerchantId(0)]["rpm"];
        assert_eq!(m_bag.total(), 2);
        assert_eq!(index.products_m[&MerchantId(0)].len(), 2);
    }

    #[test]
    fn unconditioned_index_uses_all_offers_and_products() {
        use pse_core::{AttributeDef, AttributeKind, CategorySchema, Taxonomy};
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("T");
        let cat = tax.add_leaf(
            top,
            "C",
            CategorySchema::from_attributes([AttributeDef::new("Speed", AttributeKind::Numeric)]),
        );
        let mut catalog = Catalog::new(tax);
        for i in 0..3 {
            catalog.add_product(cat, format!("p{i}"), Spec::from_pairs([("Speed", "7200")]));
        }
        let offers =
            vec![offer(0, 0, cat.0, &[("RPM", "7200")]), offer(1, 0, cat.0, &[("RPM", "5400")])];
        let index = FeatureIndex::build_unconditioned(&catalog, &offers, &provider());
        let bag = &index.offer_mc[&(MerchantId(0), cat)]["rpm"];
        assert_eq!(bag.total(), 2, "all offers contribute");
        assert_eq!(index.products_c[&cat].len(), 3, "all products included");
        assert_eq!(index.products_mc[&(MerchantId(0), cat)].len(), 3);
    }

    #[test]
    fn deterministic_enumeration() {
        let offers = vec![offer(0, 2, 0, &[("B", "1"), ("A", "2")]), offer(1, 1, 3, &[("Z", "1")])];
        let mut hist = HistoricalMatches::new();
        hist.insert(OfferId(0), ProductId(0));
        hist.insert(OfferId(1), ProductId(1));
        let index = FeatureIndex::build_matched(&offers, &hist, &provider());
        assert_eq!(
            index.merchant_category_groups(),
            vec![(MerchantId(1), CategoryId(3)), (MerchantId(2), CategoryId(0))]
        );
        assert_eq!(index.merchant_attributes(MerchantId(2), CategoryId(0)), ["a", "b"]);
        assert!(index.merchant_attributes(MerchantId(9), CategoryId(9)).is_empty());
    }
}
