//! Offline Learning (Section 3): attribute-correspondence creation.
//!
//! The driver enumerates candidate tuples `⟨Ap, Ao, M, C⟩` from the
//! historical data, computes the six distributional-similarity features for
//! each, builds a training set *automatically* from name-identity candidates
//! (Section 3.2), trains a logistic-regression classifier, and scores every
//! candidate. Accepted correspondences (name identities plus candidates
//! scoring above the decision threshold) feed the run-time Schema
//! Reconciliation component.

pub mod bags;
pub mod features;

use pse_core::{
    AttributeCorrespondence, Catalog, CategoryId, CorrespondenceSet, HistoricalMatches, MerchantId,
    Offer,
};
use pse_ml::{Dataset, LogisticRegression, TrainConfig};
use pse_text::normalize::normalize_attribute_name;
use serde::{Deserialize, Serialize};

use crate::provider::SpecProvider;
use bags::FeatureIndex;
use features::{FeatureComputer, NUM_FEATURES};

/// Configuration of the offline phase.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Classifier training hyperparameters.
    pub train: TrainConfig,
    /// Probability threshold above which a candidate is predicted valid.
    pub decision_threshold: f64,
    /// Use historical matches to condition the bags (the paper's approach);
    /// `false` reproduces the "No matching" baseline of Figure 7.
    pub match_conditioning: bool,
    /// Force-accept name-identity candidates as correspondences (score 1.0),
    /// per the paper's first training-set assumption.
    pub accept_name_identities: bool,
    /// Which of the six features (Table 1 order: JS-MC, Jaccard-MC, JS-C,
    /// Jaccard-C, JS-M, Jaccard-M) the classifier may use. Masked-off
    /// features are replaced by their worst-case constants, so the
    /// classifier cannot extract signal from them — the grouping-ablation
    /// knob.
    pub feature_mask: [bool; features::NUM_FEATURES],
    /// Add two *name-similarity* features (normalized edit distance and
    /// trigram Dice between `Ap` and `Ao`) to the instance features. The
    /// paper leaves this as future work ("we would also like to integrate
    /// other matchers with our framework, notably, name matchers");
    /// `false` reproduces the paper's instance-only configuration.
    pub use_name_features: bool,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            decision_threshold: 0.5,
            match_conditioning: true,
            accept_name_identities: true,
            feature_mask: [true; features::NUM_FEATURES],
            use_name_features: false,
        }
    }
}

impl OfflineConfig {
    /// A config that only uses the merchant+category grouping features.
    pub fn mc_only() -> Self {
        Self { feature_mask: [true, true, false, false, false, false], ..Self::default() }
    }

    /// Drop one grouping (0 = MC, 1 = C, 2 = M) from the default config.
    pub fn without_grouping(g: usize) -> Self {
        let mut mask = [true; features::NUM_FEATURES];
        mask[2 * g] = false;
        mask[2 * g + 1] = false;
        Self { feature_mask: mask, ..Self::default() }
    }

    /// The paper's future-work configuration: instance features + name
    /// features.
    pub fn with_name_features() -> Self {
        Self { use_name_features: true, ..Self::default() }
    }
}

/// One scored candidate tuple `⟨Ap, Ao, M, C⟩`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredCandidate {
    /// Catalog attribute (surface form from the schema).
    pub catalog_attribute: String,
    /// Merchant attribute (normalized form).
    pub merchant_attribute: String,
    /// The merchant.
    pub merchant: MerchantId,
    /// The category.
    pub category: CategoryId,
    /// Classifier probability.
    pub score: f64,
    /// Whether the candidate is a name identity (`Ap` = `Ao` after
    /// normalization); such candidates are training data and are excluded
    /// from the evaluation samples, as in Section 5.2.
    pub is_name_identity: bool,
}

/// Statistics reported by the offline phase (the paper reports the same
/// numbers for its Bing Shopping run in Section 5.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OfflineStats {
    /// Historical offers whose specifications fed the bags.
    pub historical_offers: usize,
    /// Candidate tuples enumerated.
    pub candidates: usize,
    /// Automatically labeled training examples.
    pub training_examples: usize,
    /// Positive training examples (name identities).
    pub training_positives: usize,
    /// Candidates predicted valid at the decision threshold.
    pub predicted_valid: usize,
}

/// Everything the offline phase produces.
pub struct OfflineOutcome {
    /// The correspondences handed to run-time schema reconciliation.
    pub correspondences: CorrespondenceSet,
    /// All scored candidates (for precision-at-coverage evaluation).
    pub scored: Vec<ScoredCandidate>,
    /// The trained classifier (`None` when the training set was degenerate
    /// and the heuristic fallback scorer was used).
    pub model: Option<LogisticRegression>,
    /// Run statistics.
    pub stats: OfflineStats,
}

/// The offline learner.
#[derive(Debug, Clone, Default)]
pub struct OfflineLearner {
    config: OfflineConfig,
}

impl OfflineLearner {
    /// Learner with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learner with custom configuration.
    pub fn with_config(config: OfflineConfig) -> Self {
        Self { config }
    }

    /// Run the offline phase.
    ///
    /// `offers` should contain the historical offers (offers present in
    /// `historical`); other offers are ignored under match conditioning and
    /// contribute bags under the unconditioned baseline.
    pub fn learn<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        historical: &HistoricalMatches,
        provider: &P,
    ) -> OfflineOutcome {
        let _obs = pse_obs::span("offline.learn");
        let index = if self.config.match_conditioning {
            FeatureIndex::build_matched(catalog, offers, historical, provider)
        } else {
            FeatureIndex::build_unconditioned(catalog, offers, provider)
        };
        let historical_offers = if self.config.match_conditioning {
            offers.iter().filter(|o| historical.product_of(o.id).is_some()).count()
        } else {
            offers.len()
        };
        self.learn_from_index(catalog, &index, historical_offers)
    }

    /// Run the offline phase over a pre-built feature index (used by
    /// baselines and ablations that share the bag-building step).
    pub fn learn_from_index(
        &self,
        catalog: &Catalog,
        index: &FeatureIndex,
        historical_offers: usize,
    ) -> OfflineOutcome {
        // 1. Enumerate candidates and compute features. Groups are
        //    independent given the shared (immutable) index, so they fan out
        //    across worker threads; each worker owns a `FeatureComputer`
        //    whose bag caches stay hot across the contiguous run of groups
        //    it processes. Group outputs are concatenated in group order, so
        //    candidate enumeration is identical at any thread count.
        let features_span = pse_obs::span("offline.features");
        let groups = index.merchant_category_groups();
        let per_group: Vec<(Vec<ScoredCandidate>, Vec<Vec<f64>>)> = pse_par::par_map_init(
            &groups,
            || FeatureComputer::new(catalog, index),
            |computer, &(merchant, category)| {
                let schema = catalog.taxonomy().schema(category);
                let merchant_attrs: Vec<String> = index
                    .merchant_attributes(merchant, category)
                    .into_iter()
                    .map(String::from)
                    .collect();
                let mut cands = Vec::new();
                let mut rows = Vec::new();
                for ap in schema.iter() {
                    let ap_norm = ap.normalized_name();
                    for ao in &merchant_attrs {
                        let mut f = computer.features(merchant, category, &ap.name, ao).to_vec();
                        for (i, keep) in self.config.feature_mask.iter().enumerate() {
                            if !keep {
                                // Worst-case constants: max divergence / zero overlap.
                                f[i] = if i % 2 == 0 { pse_text::divergence::MAX_JS } else { 0.0 };
                            }
                        }
                        if self.config.use_name_features {
                            f.push(pse_text::strsim::levenshtein_similarity(&ap_norm, ao));
                            f.push(pse_text::strsim::trigram_dice(&ap_norm, ao));
                        }
                        rows.push(f);
                        cands.push(ScoredCandidate {
                            catalog_attribute: ap.name.clone(),
                            merchant_attribute: ao.clone(),
                            merchant,
                            category,
                            score: 0.0,
                            is_name_identity: *ao == ap_norm,
                        });
                    }
                }
                (cands, rows)
            },
        );
        let mut candidates: Vec<ScoredCandidate> = Vec::new();
        let mut feature_rows: Vec<Vec<f64>> = Vec::new();
        for (cands, rows) in per_group {
            candidates.extend(cands);
            feature_rows.extend(rows);
        }
        drop(features_span);
        pse_obs::add("offline.candidates", candidates.len() as u64);

        // 2. Automated training-set construction (Section 3.2): for every
        //    (M, C) where the merchant uses some catalog attribute name
        //    verbatim, that candidate is positive and all ⟨A, B≠A, M, C⟩
        //    candidates for the same catalog attribute are negative.
        let mut train = Dataset::new();
        let mut group_has_identity: std::collections::HashMap<
            (MerchantId, CategoryId, String),
            bool,
        > = std::collections::HashMap::new();
        for c in &candidates {
            if c.is_name_identity {
                group_has_identity
                    .insert((c.merchant, c.category, c.catalog_attribute.clone()), true);
            }
        }
        for (c, f) in candidates.iter().zip(&feature_rows) {
            let key = (c.merchant, c.category, c.catalog_attribute.clone());
            if group_has_identity.contains_key(&key) {
                train.push(f.clone(), c.is_name_identity);
            }
        }

        // 3. Train; degenerate training sets fall back to a heuristic
        //    scorer so the pipeline still functions on tiny inputs.
        let positives = train.positives();
        let trainable = !train.is_empty() && positives > 0 && positives < train.len();
        let model = {
            let _obs = pse_obs::span("offline.train");
            trainable.then(|| {
                // One gradient pass per example per epoch.
                pse_obs::add("offline.train_iterations", self.config.train.epochs as u64);
                pse_obs::add("offline.training_examples", train.len() as u64);
                pse_obs::add("offline.training_positives", positives as u64);
                LogisticRegression::train(&train, &self.config.train)
            })
        };

        // 4. Score all candidates.
        let score_span = pse_obs::span("offline.score");
        for (c, f) in candidates.iter_mut().zip(&feature_rows) {
            c.score = match &model {
                Some(m) => m.predict_proba(f),
                None => heuristic_score(f),
            };
        }
        drop(score_span);

        // 5. Assemble the correspondence set.
        let mut set = CorrespondenceSet::new();
        let mut predicted_valid = 0usize;
        for c in &candidates {
            if c.score >= self.config.decision_threshold {
                predicted_valid += 1;
            }
            let accept_identity = self.config.accept_name_identities && c.is_name_identity;
            if accept_identity || c.score >= self.config.decision_threshold {
                set.insert(AttributeCorrespondence {
                    catalog_attribute: c.catalog_attribute.clone(),
                    merchant_attribute: c.merchant_attribute.clone(),
                    merchant: c.merchant,
                    category: c.category,
                    score: if accept_identity { 1.0 } else { c.score },
                });
            }
        }

        pse_obs::add("offline.predicted_valid", predicted_valid as u64);
        pse_obs::add("offline.correspondences_accepted", set.len() as u64);
        let stats = OfflineStats {
            historical_offers,
            candidates: candidates.len(),
            training_examples: train.len(),
            training_positives: positives,
            predicted_valid,
        };
        OfflineOutcome { correspondences: set, scored: candidates, model, stats }
    }
}

/// Fallback scorer when no classifier can be trained: the mean of the six
/// instance similarities (plus any name features, which are already
/// similarities), with divergences flipped into similarities.
fn heuristic_score(f: &[f64]) -> f64 {
    use pse_text::divergence::MAX_JS;
    let js_sim = |d: f64| 1.0 - (d / MAX_JS).clamp(0.0, 1.0);
    let mut sum = js_sim(f[0]) + f[1] + js_sim(f[2]) + f[3] + js_sim(f[4]) + f[5];
    for extra in &f[NUM_FEATURES..] {
        sum += extra;
    }
    sum / f.len() as f64
}

/// Convenience: is this candidate a name identity?
pub fn is_name_identity(catalog_attr: &str, merchant_attr_norm: &str) -> bool {
    normalize_attribute_name(catalog_attr) == merchant_attr_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{AttributeDef, AttributeKind, CategorySchema, OfferId, Spec, Taxonomy};

    /// Two merchants in one category. Merchant 0 uses name identities for
    /// Speed and Interface; merchant 1 uses RPM / Int. Type. The classifier
    /// must learn from merchant 0's identities to map merchant 1's names.
    fn scenario() -> (Catalog, Vec<Offer>, HistoricalMatches) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Speed", AttributeKind::Numeric),
                AttributeDef::new("Interface", AttributeKind::Text),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let data = [
            ("5400", "ATA 100"),
            ("7200", "IDE 133"),
            ("5400", "IDE 133"),
            ("7200", "ATA 133"),
            ("10000", "SCSI 320"),
            ("7200", "SATA 300"),
        ];
        let mut offers = Vec::new();
        let mut hist = HistoricalMatches::new();
        let mut oid = 0u64;
        for (i, (speed, iface)) in data.iter().enumerate() {
            let pid = catalog.add_product(
                cat,
                format!("drive {i}"),
                Spec::from_pairs([("Speed", *speed), ("Interface", *iface)]),
            );
            // Merchant 0: identity names.
            offers.push(mk_offer(oid, 0, cat, &[("Speed", speed), ("Interface", iface)]));
            hist.insert(OfferId(oid), pid);
            oid += 1;
            // Merchant 1: renamed attributes, reformatted values.
            offers.push(mk_offer(
                oid,
                1,
                cat,
                &[("RPM", speed), ("Int. Type", &format!("{iface} mb/s"))],
            ));
            hist.insert(OfferId(oid), pid);
            oid += 1;
        }
        (catalog, offers, hist)
    }

    fn mk_offer(id: u64, merchant: u32, cat: CategoryId, pairs: &[(&str, &str)]) -> Offer {
        Offer {
            id: OfferId(id),
            merchant: MerchantId(merchant),
            price_cents: 100,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        }
    }

    #[test]
    fn learns_cross_merchant_correspondences() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let outcome = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        let cat = offers[0].category.unwrap();

        // Merchant 1's RPM must map to Speed, Int. Type to Interface.
        assert_eq!(outcome.correspondences.translate(MerchantId(1), cat, "rpm"), Some("Speed"),);
        assert_eq!(
            outcome.correspondences.translate(MerchantId(1), cat, "int type"),
            Some("Interface"),
        );
        // Merchant 0's identities are present with score 1.0.
        assert_eq!(outcome.correspondences.score(MerchantId(0), cat, "speed"), Some(1.0));
        assert!(outcome.model.is_some(), "classifier trained");
        assert!(outcome.stats.training_positives > 0);
        assert!(outcome.stats.candidates >= outcome.stats.training_examples);
    }

    #[test]
    fn correct_candidates_outscore_wrong_ones() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let outcome = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        let score_of = |ap: &str, ao: &str| {
            outcome
                .scored
                .iter()
                .find(|c| {
                    c.merchant == MerchantId(1)
                        && c.catalog_attribute == ap
                        && c.merchant_attribute == ao
                })
                .map(|c| c.score)
                .unwrap()
        };
        assert!(score_of("Speed", "rpm") > score_of("Speed", "int type"));
        assert!(score_of("Interface", "int type") > score_of("Interface", "rpm"));
    }

    #[test]
    fn name_identities_are_flagged_and_excluded_from_eval_sample() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let outcome = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        let identities: Vec<_> = outcome.scored.iter().filter(|c| c.is_name_identity).collect();
        assert!(!identities.is_empty());
        for c in identities {
            assert_eq!(c.merchant, MerchantId(0), "only merchant 0 uses identity names");
        }
    }

    #[test]
    fn empty_history_falls_back_to_heuristic() {
        let (catalog, offers, _) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let outcome =
            OfflineLearner::new().learn(&catalog, &offers, &HistoricalMatches::new(), &provider);
        assert!(outcome.model.is_none());
        assert!(outcome.scored.is_empty());
        assert!(outcome.correspondences.is_empty());
    }

    #[test]
    fn unconditioned_mode_builds_different_bags() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let conditioned = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        let unconditioned = OfflineLearner::with_config(OfflineConfig {
            match_conditioning: false,
            ..OfflineConfig::default()
        })
        .learn(&catalog, &offers, &hist, &provider);
        // Both should produce candidates; the unconditioned run sees the
        // same offers here (all are historical) so candidate counts match.
        assert_eq!(conditioned.stats.candidates, unconditioned.stats.candidates);
    }

    #[test]
    fn stats_are_consistent() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let outcome = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        assert_eq!(outcome.stats.historical_offers, offers.len());
        assert_eq!(outcome.scored.len(), outcome.stats.candidates);
        let above = outcome.scored.iter().filter(|c| c.score >= 0.5).count();
        assert_eq!(above, outcome.stats.predicted_valid);
    }

    #[test]
    fn feature_mask_changes_scores() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let full = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
        let masked = OfflineLearner::with_config(OfflineConfig::mc_only())
            .learn(&catalog, &offers, &hist, &provider);
        assert_eq!(full.scored.len(), masked.scored.len());
        // The MC-only variant still ranks the true pairs first in this
        // clean scenario.
        let score_of = |out: &OfflineOutcome, ap: &str, ao: &str| {
            out.scored
                .iter()
                .find(|c| {
                    c.merchant == MerchantId(1)
                        && c.catalog_attribute == ap
                        && c.merchant_attribute == ao
                })
                .map(|c| c.score)
                .unwrap()
        };
        assert!(score_of(&masked, "Speed", "rpm") > score_of(&masked, "Speed", "int type"));
    }

    #[test]
    fn without_grouping_masks_the_right_features() {
        let cfg = OfflineConfig::without_grouping(1);
        assert_eq!(cfg.feature_mask, [true, true, false, false, true, true]);
        let cfg = OfflineConfig::without_grouping(2);
        assert_eq!(cfg.feature_mask, [true, true, true, true, false, false]);
    }

    #[test]
    fn name_features_extend_the_model() {
        let (catalog, offers, hist) = scenario();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let with_names = OfflineLearner::with_config(OfflineConfig::with_name_features())
            .learn(&catalog, &offers, &hist, &provider);
        let cat = offers[0].category.unwrap();
        // The extended model still learns the cross-merchant mappings.
        assert_eq!(with_names.correspondences.translate(MerchantId(1), cat, "rpm"), Some("Speed"),);
        // Its weight vector has eight entries (six instance + two name).
        assert_eq!(with_names.model.unwrap().weights().len(), 8);
    }

    #[test]
    fn heuristic_score_bounds() {
        use pse_text::divergence::MAX_JS;
        assert!((heuristic_score(&[0.0, 1.0, 0.0, 1.0, 0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(heuristic_score(&[MAX_JS, 0.0, MAX_JS, 0.0, MAX_JS, 0.0]).abs() < 1e-12);
    }
}
