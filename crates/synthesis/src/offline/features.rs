//! The six classifier features of Table 1: {JS divergence, Jaccard} ×
//! {merchant+category, category, merchant} groupings.
//!
//! Product-side bags (values of a catalog attribute over the matched product
//! set of a grouping) are materialized lazily and cached: per current
//! (merchant, category) for the MC grouping, and persistently per category /
//! per merchant for the coarser groupings, which are reused across many
//! candidates.

use std::collections::{HashMap, HashSet};

use pse_core::{Catalog, CategoryId, MerchantId, ProductId};
use pse_text::divergence::MAX_JS;
use pse_text::sparse::{jaccard_counts, jensen_shannon_counts, SparseCounts};
use pse_text::BagOfWords;

use super::bags::FeatureIndex;

/// Number of classifier features.
pub const NUM_FEATURES: usize = 6;

/// Human-readable names, aligned with the feature vector layout.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] =
    ["JS-MC", "Jaccard-MC", "JS-C", "Jaccard-C", "JS-M", "Jaccard-M"];

/// Index of the JS-MC feature within the vector.
pub const F_JS_MC: usize = 0;
/// Index of the Jaccard-MC feature within the vector.
pub const F_JACCARD_MC: usize = 1;

/// Computes feature vectors for candidate tuples.
pub struct FeatureComputer<'a> {
    catalog: &'a Catalog,
    index: &'a FeatureIndex,
    /// Product bags for the *current* (merchant, category) group.
    mc_group: Option<(MerchantId, CategoryId)>,
    mc_bags: HashMap<String, SparseCounts>,
    /// Persistent per-category product bags: category → Ap → bag.
    c_bags: HashMap<CategoryId, HashMap<String, SparseCounts>>,
    /// Persistent per-merchant product bags: merchant → Ap → bag.
    m_bags: HashMap<MerchantId, HashMap<String, SparseCounts>>,
}

impl<'a> FeatureComputer<'a> {
    /// A computer over the given catalog and index.
    pub fn new(catalog: &'a Catalog, index: &'a FeatureIndex) -> Self {
        Self {
            catalog,
            index,
            mc_group: None,
            mc_bags: HashMap::new(),
            c_bags: HashMap::new(),
            m_bags: HashMap::new(),
        }
    }

    /// Feature vector for candidate `⟨Ap, Ao, M, C⟩`.
    ///
    /// `catalog_attr` is the catalog attribute name (surface form from the
    /// schema); `merchant_attr` is the normalized merchant attribute name.
    pub fn features(
        &mut self,
        merchant: MerchantId,
        category: CategoryId,
        catalog_attr: &str,
        merchant_attr: &str,
    ) -> [f64; NUM_FEATURES] {
        let mut out = [MAX_JS, 0.0, MAX_JS, 0.0, MAX_JS, 0.0];

        // MC grouping.
        if let Some(offer_bag) =
            self.index.offer_mc.get(&(merchant, category)).and_then(|m| m.get(merchant_attr))
        {
            self.ensure_mc_group(merchant, category);
            if let Some(product_bag) = self.mc_bags.get(catalog_attr) {
                out[0] = jensen_shannon_counts(product_bag, offer_bag);
                out[1] = jaccard_counts(product_bag, offer_bag);
            }
        }

        // C grouping.
        if let Some(offer_bag) =
            self.index.offer_c.get(&category).and_then(|m| m.get(merchant_attr))
        {
            let index = self.index;
            let products = self.index.products_c.get(&category);
            let bags = self.c_bags.entry(category).or_default();
            if let Some(products) = products {
                let bag = bags
                    .entry(catalog_attr.to_string())
                    .or_insert_with(|| index.product_counts(products, catalog_attr));
                out[2] = jensen_shannon_counts(bag, offer_bag);
                out[3] = jaccard_counts(bag, offer_bag);
            }
        }

        // M grouping.
        if let Some(offer_bag) =
            self.index.offer_m.get(&merchant).and_then(|m| m.get(merchant_attr))
        {
            let index = self.index;
            let products = self.index.products_m.get(&merchant);
            let bags = self.m_bags.entry(merchant).or_default();
            if let Some(products) = products {
                let bag = bags
                    .entry(catalog_attr.to_string())
                    .or_insert_with(|| index.product_counts(products, catalog_attr));
                out[4] = jensen_shannon_counts(bag, offer_bag);
                out[5] = jaccard_counts(bag, offer_bag);
            }
        }

        out
    }

    fn ensure_mc_group(&mut self, merchant: MerchantId, category: CategoryId) {
        if self.mc_group == Some((merchant, category)) {
            return;
        }
        self.mc_group = Some((merchant, category));
        self.mc_bags.clear();
        if let Some(products) = self.index.products_mc.get(&(merchant, category)) {
            for attr in self.catalog.taxonomy().schema(category).iter() {
                self.mc_bags
                    .insert(attr.name.clone(), self.index.product_counts(products, &attr.name));
            }
        }
    }
}

/// Bag of the values of `attr` over a set of products.
pub fn product_bag(catalog: &Catalog, products: &HashSet<ProductId>, attr: &str) -> BagOfWords {
    let mut bag = BagOfWords::new();
    for &pid in products {
        if let Some(v) = catalog.product(pid).spec.get(attr) {
            bag.add_value(v);
        }
    }
    bag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{
        AttributeDef, AttributeKind, CategorySchema, HistoricalMatches, Offer, OfferId, Spec,
        Taxonomy,
    };

    /// The paper's Figure 5 scenario: Speed/RPM identical distributions,
    /// Interface/Int. Type similar, Speed/Int. Type disjoint.
    fn figure5() -> (Catalog, Vec<Offer>, HistoricalMatches) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Speed", AttributeKind::Numeric),
                AttributeDef::new("Interface", AttributeKind::Text),
            ]),
        );
        let mut catalog = Catalog::new(tax);
        let data = [
            ("Seagate Barracuda", "5400", "ATA 100"),
            ("Western Digital Raptor", "7200", "IDE 133"),
            ("Seagate Momentus", "5400", "IDE 133"),
            ("Hitachi 39T2525", "7200", "ATA 133"),
        ];
        let mut offers = Vec::new();
        let mut hist = HistoricalMatches::new();
        for (i, (title, speed, iface)) in data.iter().enumerate() {
            let pid = catalog.add_product(
                cat,
                *title,
                Spec::from_pairs([("Speed", *speed), ("Interface", *iface)]),
            );
            let oid = OfferId(i as u64);
            offers.push(Offer {
                id: oid,
                merchant: MerchantId(0),
                price_cents: 100,
                image_url: None,
                category: Some(cat),
                url: String::new(),
                title: title.to_string(),
                spec: Spec::from_pairs([
                    ("RPM", speed.to_string()),
                    ("Int. Type", format!("{iface} mb/s")),
                ]),
            });
            hist.insert(oid, pid);
        }
        (catalog, offers, hist)
    }

    #[test]
    fn figure5_feature_ordering() {
        let (catalog, offers, hist) = figure5();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider);
        let mut fc = FeatureComputer::new(&catalog, &index);
        let cat = offers[0].category.unwrap();

        let speed_rpm = fc.features(MerchantId(0), cat, "Speed", "rpm");
        let iface_int = fc.features(MerchantId(0), cat, "Interface", "int type");
        let speed_int = fc.features(MerchantId(0), cat, "Speed", "int type");
        let iface_rpm = fc.features(MerchantId(0), cat, "Interface", "rpm");

        // Speed↔RPM distributions are identical: JS = 0, Jaccard = 1.
        assert!(speed_rpm[F_JS_MC] < 1e-9, "{speed_rpm:?}");
        assert!((speed_rpm[F_JACCARD_MC] - 1.0).abs() < 1e-9);
        // Interface↔Int.Type close but not identical (mb/s tokens added).
        assert!(iface_int[F_JS_MC] > 0.0 && iface_int[F_JS_MC] < 0.3, "{iface_int:?}");
        // Wrong pairings are far.
        assert!(speed_int[F_JS_MC] > iface_int[F_JS_MC]);
        assert!(iface_rpm[F_JS_MC] > iface_int[F_JS_MC]);
        // The paper's Figure 5(d): Speed↔Int.Type and Interface↔RPM are
        // maximally divergent (disjoint supports).
        assert!((speed_int[F_JS_MC] - MAX_JS).abs() < 1e-9);
    }

    #[test]
    fn missing_groupings_use_worst_case_defaults() {
        let (catalog, offers, hist) = figure5();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider);
        let mut fc = FeatureComputer::new(&catalog, &index);
        let cat = offers[0].category.unwrap();
        let f = fc.features(MerchantId(9), cat, "Speed", "rpm");
        // Unknown merchant: MC and M groupings default; C grouping active.
        assert_eq!(f[0], MAX_JS);
        assert_eq!(f[1], 0.0);
        assert!(f[2] < 1e-9, "category grouping still works: {f:?}");
        assert_eq!(f[4], MAX_JS);
    }

    #[test]
    fn unknown_catalog_attribute_is_worst_case() {
        let (catalog, offers, hist) = figure5();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider);
        let mut fc = FeatureComputer::new(&catalog, &index);
        let cat = offers[0].category.unwrap();
        let f = fc.features(MerchantId(0), cat, "Nonexistent", "rpm");
        assert_eq!(f[F_JS_MC], MAX_JS);
        assert_eq!(f[F_JACCARD_MC], 0.0);
    }

    #[test]
    fn mc_cache_switches_groups_correctly() {
        let (catalog, offers, hist) = figure5();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider);
        let mut fc = FeatureComputer::new(&catalog, &index);
        let cat = offers[0].category.unwrap();
        let a = fc.features(MerchantId(0), cat, "Speed", "rpm");
        let _ = fc.features(MerchantId(1), cat, "Speed", "rpm");
        let b = fc.features(MerchantId(0), cat, "Speed", "rpm");
        assert_eq!(a, b, "cache invalidation must be transparent");
    }
}
