//! The product-synthesis pipeline of Nguyen et al., *Synthesizing Products
//! for Online Catalogs*, PVLDB 4(7), 2011.
//!
//! Two phases, mirroring Figure 4 of the paper:
//!
//! * **[`offline`] learning** — build match-conditioned bags of words from
//!   historical offer-to-product associations, compute six distributional-
//!   similarity features (JS divergence and Jaccard coefficient, grouped by
//!   merchant+category / category / merchant), construct a training set
//!   automatically from name-identity candidates, train a logistic-
//!   regression classifier, and predict attribute correspondences.
//! * **[`runtime`] offer processing** — extract attribute–value pairs from
//!   landing pages, reconcile them to catalog schema names using the learned
//!   correspondences, cluster reconciled offers by key attribute (MPN/UPC),
//!   and fuse each cluster into a single product specification with
//!   term-level generalized majority voting.
//!
//! The [`provider`] module decouples the pipeline from where offer
//! specifications come from (live extraction from rendered pages, cached
//! specs, feeds), and [`category`] holds the title-based category classifier
//! mentioned in Section 2 of the paper.

pub mod category;
pub mod matching;
pub mod offline;
pub mod pipeline;
pub mod provider;
pub mod runtime;

pub use matching::{MatcherConfig, TitleMatcher};
pub use offline::{OfflineConfig, OfflineLearner, OfflineOutcome, OfflineStats, ScoredCandidate};
pub use pipeline::{Pipeline, PipelineBuildError, PipelineBuilder};
pub use provider::{ExtractingProvider, FnProvider, SpecProvider};
pub use runtime::{
    advance_cluster_fusion, fuse_cluster, fuse_cluster_cached, reconcile_batch, Cluster,
    ClusterFusionCache, FusedValue, FusionAccumulator, FusionStrategy, KeyAttributes,
    ReconciledOffer, RuntimeConfig, RuntimePipeline, SynthesisResult, SynthesizedProduct,
};

/// The types every pipeline consumer imports: `use pse_synthesis::prelude::*;`.
pub mod prelude {
    pub use crate::pipeline::{Pipeline, PipelineBuildError, PipelineBuilder};
    pub use crate::provider::{ExtractingProvider, FnProvider, SpecProvider};
    pub use crate::runtime::{
        FusionStrategy, KeyAttributes, ReconciledOffer, RuntimeConfig, RuntimePipeline,
        SynthesisResult, SynthesizedProduct,
    };
}
