//! The [`Pipeline`] facade: catalog + correspondences + runtime
//! configuration assembled through one builder.
//!
//! [`RuntimePipeline`](crate::RuntimePipeline) keeps the paper's shape — a
//! correspondence set plus a config, with the catalog passed to every
//! `process` call — which is the right primitive but an awkward consumer
//! API: every call site threads the same three values around. `Pipeline`
//! binds them once:
//!
//! ```
//! use pse_synthesis::prelude::*;
//! # use pse_core::{Catalog, CorrespondenceSet, Taxonomy};
//! # let catalog = Catalog::new(Taxonomy::new());
//! # let correspondences = CorrespondenceSet::new();
//! let pipeline = Pipeline::builder()
//!     .catalog(catalog)
//!     .correspondences(correspondences)
//!     .fusion(FusionStrategy::CentroidVote)
//!     .build()
//!     .unwrap();
//! ```
//!
//! The builder fails with a typed [`PipelineBuildError`] (not a panic, not
//! a stringly error) when a required input is missing.

use pse_core::{Catalog, CorrespondenceSet, Offer};

use crate::provider::SpecProvider;
use crate::runtime::{FusionStrategy, RuntimeConfig, RuntimePipeline, SynthesisResult};

/// A fully assembled synthesis pipeline: catalog, learned correspondences,
/// and runtime configuration bound together. Build one with
/// [`Pipeline::builder`].
pub struct Pipeline {
    catalog: Catalog,
    runtime: RuntimePipeline,
}

impl Pipeline {
    /// Start assembling a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Process a batch of offers into synthesized products against the
    /// bound catalog. See [`RuntimePipeline::process`].
    pub fn process<P: SpecProvider>(&self, offers: &[Offer], provider: &P) -> SynthesisResult {
        self.runtime.process(&self.catalog, offers, provider)
    }

    /// The bound catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The correspondence set in use.
    pub fn correspondences(&self) -> &CorrespondenceSet {
        self.runtime.correspondences()
    }

    /// The runtime configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        self.runtime.config()
    }
}

/// Why a [`PipelineBuilder::build`] call could not produce a [`Pipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineBuildError {
    /// No catalog was supplied ([`PipelineBuilder::catalog`]).
    MissingCatalog,
    /// No correspondence set was supplied
    /// ([`PipelineBuilder::correspondences`]).
    MissingCorrespondences,
}

impl std::fmt::Display for PipelineBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingCatalog => write!(f, "pipeline builder: no catalog supplied"),
            Self::MissingCorrespondences => {
                write!(f, "pipeline builder: no correspondence set supplied")
            }
        }
    }
}

impl std::error::Error for PipelineBuildError {}

impl From<PipelineBuildError> for String {
    fn from(e: PipelineBuildError) -> String {
        e.to_string()
    }
}

/// Builder for [`Pipeline`]; see the module docs for the idiom.
#[derive(Default)]
pub struct PipelineBuilder {
    catalog: Option<Catalog>,
    correspondences: Option<CorrespondenceSet>,
    config: RuntimeConfig,
}

impl PipelineBuilder {
    /// The catalog whose schemas order fused specifications (required).
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// The learned attribute correspondences (required).
    pub fn correspondences(mut self, correspondences: CorrespondenceSet) -> Self {
        self.correspondences = Some(correspondences);
        self
    }

    /// Replace the whole runtime configuration at once.
    pub fn runtime_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Value-fusion rule (default: the paper's centroid voting).
    pub fn fusion(mut self, fusion: FusionStrategy) -> Self {
        self.config.fusion = fusion;
        self
    }

    /// Key attributes used for clustering, in preference order
    /// (default: MPN then UPC).
    pub fn key_attributes<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.key_attributes = keys.into_iter().map(Into::into).collect();
        self
    }

    /// Minimum cluster size for a product to be synthesized (default 1).
    pub fn min_cluster_size(mut self, n: usize) -> Self {
        self.config.min_cluster_size = n;
        self
    }

    /// Whether fused specifications include the clustering key attribute
    /// (default true, the paper's setting).
    pub fn include_keys_in_spec(mut self, include: bool) -> Self {
        self.config.include_keys_in_spec = include;
        self
    }

    /// Assemble the pipeline, or report what is missing.
    pub fn build(self) -> Result<Pipeline, PipelineBuildError> {
        let catalog = self.catalog.ok_or(PipelineBuildError::MissingCatalog)?;
        let correspondences =
            self.correspondences.ok_or(PipelineBuildError::MissingCorrespondences)?;
        Ok(Pipeline {
            catalog,
            runtime: RuntimePipeline::with_config(correspondences, self.config),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{
        AttributeCorrespondence, AttributeDef, AttributeKind, CategorySchema, MerchantId, OfferId,
        Spec, Taxonomy,
    };

    fn setup() -> (Catalog, CorrespondenceSet, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::key("MPN", AttributeKind::Identifier),
                AttributeDef::new("Speed", AttributeKind::Numeric),
            ]),
        );
        let catalog = Catalog::new(tax);
        let set = CorrespondenceSet::from_correspondences([
            AttributeCorrespondence {
                catalog_attribute: "MPN".into(),
                merchant_attribute: "mpn".into(),
                merchant: MerchantId(0),
                category: cat,
                score: 0.9,
            },
            AttributeCorrespondence {
                catalog_attribute: "Speed".into(),
                merchant_attribute: "rpm".into(),
                merchant: MerchantId(0),
                category: cat,
                score: 0.9,
            },
        ]);
        let offers = vec![Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 100,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs([("MPN", "ABC123"), ("RPM", "7200")]),
        }];
        (catalog, set, offers)
    }

    #[test]
    fn builder_matches_runtime_pipeline() {
        let (catalog, set, offers) = setup();
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let direct = RuntimePipeline::new(set.clone()).process(&catalog, &offers, &provider);
        let pipeline =
            Pipeline::builder().catalog(catalog).correspondences(set).build().expect("complete");
        let via_builder = pipeline.process(&offers, &provider);
        assert_eq!(
            serde_json::to_string(&via_builder.products).unwrap(),
            serde_json::to_string(&direct.products).unwrap()
        );
    }

    #[test]
    fn builder_knobs_reach_the_config() {
        let (catalog, set, _) = setup();
        let pipeline = Pipeline::builder()
            .catalog(catalog)
            .correspondences(set)
            .fusion(FusionStrategy::LongestValue)
            .key_attributes(["UPC"])
            .min_cluster_size(2)
            .include_keys_in_spec(false)
            .build()
            .unwrap();
        let config = pipeline.config();
        assert_eq!(config.fusion, FusionStrategy::LongestValue);
        assert_eq!(config.key_attributes, ["UPC".to_string()]);
        assert_eq!(config.min_cluster_size, 2);
        assert!(!config.include_keys_in_spec);
    }

    #[test]
    fn missing_inputs_are_typed_errors() {
        let (catalog, set, _) = setup();
        assert_eq!(
            Pipeline::builder().correspondences(set).build().err(),
            Some(PipelineBuildError::MissingCatalog)
        );
        assert_eq!(
            Pipeline::builder().catalog(catalog).build().err(),
            Some(PipelineBuildError::MissingCorrespondences)
        );
        let as_string: String = PipelineBuildError::MissingCatalog.into();
        assert!(as_string.contains("no catalog"));
    }
}
