//! Clustering (Section 4): group reconciled offers by key attribute.
//!
//! "The Clustering component first extracts the key attributes (Model Part
//! Number or universal identifier UPC) for each offer. Then, offers that
//! have the same key are clustered together, leading to clusters that have
//! a one-to-one correspondence to a product instance." Schema
//! reconciliation is what makes keys comparable across merchants: `MPN` and
//! `Mfr. Part #` both translate to the catalog key attribute first.

use std::collections::HashMap;

use pse_core::CategoryId;
use pse_text::normalize::normalize_attribute_name;
use pse_text::tokenize::surface_tokens;

use super::reconcile::ReconciledOffer;

/// A cluster of offers sharing one key value — one future product.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The category of all member offers.
    pub category: CategoryId,
    /// Which key attribute grouped this cluster (e.g. `"MPN"`).
    pub key_attribute: String,
    /// The normalized key value shared by the members.
    pub key_value: String,
    /// Member offers.
    pub members: Vec<ReconciledOffer>,
}

/// Normalize a key value for comparison: lowercase alphanumeric tokens,
/// keeping mixed tokens whole so `"HDT725050VLA360"`, `"hdt725050vla360"`
/// and `"HDT-725050-VLA360"` agree.
pub fn normalize_key(value: &str) -> String {
    surface_tokens(value).join("")
}

/// A key-attribute preference list with the names pre-normalized, so
/// routing many offers does not re-normalize the list per offer.
#[derive(Debug, Clone)]
pub struct KeyAttributes {
    /// `(surface form, normalized form)` in preference order.
    attrs: Vec<(String, String)>,
}

impl KeyAttributes {
    /// Pre-normalize a preference list (first present-and-usable wins).
    /// Accepts anything yielding string-likes: `&[String]`, `["MPN", "UPC"]`,
    /// an iterator of `&str`, … — mirroring `pse_core::spec`.
    pub fn new<I, S>(key_attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            attrs: key_attributes
                .into_iter()
                .map(|k| {
                    let k: String = k.into();
                    let normalized = normalize_attribute_name(&k);
                    (k, normalized)
                })
                .collect(),
        }
    }

    /// Decide which cluster an offer belongs to: the first key attribute in
    /// preference order whose value is present **and** normalizes to a
    /// non-empty key. A present value that normalizes to empty (`"N/A"`
    /// renders as `"—"` on some pages, or plain punctuation) falls through
    /// to the next preferred key instead of dropping the offer — the
    /// fallthrough is counted as `runtime.cluster.empty_key_fallthrough`.
    ///
    /// Returns `(key attribute surface form, normalized key value)`, or
    /// `None` when no usable key exists (the offer is dropped; with no
    /// identifier there is no safe way to group it — the paper's design).
    pub fn route(&self, offer: &ReconciledOffer) -> Option<(String, String)> {
        for (surface, normalized) in &self.attrs {
            let Some(v) = offer.value_of_normalized(normalized) else { continue };
            let key_value = normalize_key(v);
            if key_value.is_empty() {
                pse_obs::incr("runtime.cluster.empty_key_fallthrough");
                continue;
            }
            return Some((surface.clone(), key_value));
        }
        None
    }
}

/// Cluster reconciled offers by key attribute.
///
/// `key_attributes` is an ordered preference list (MPN before UPC by
/// default); see [`KeyAttributes::route`] for the per-offer selection rule.
pub fn cluster_by_key(offers: Vec<ReconciledOffer>, key_attributes: &[String]) -> Vec<Cluster> {
    let keys = KeyAttributes::new(key_attributes);
    let mut map: HashMap<(CategoryId, String, String), Vec<ReconciledOffer>> = HashMap::new();
    for offer in offers {
        let Some((attr, value)) = keys.route(&offer) else { continue };
        map.entry((offer.category, attr, value)).or_default().push(offer);
    }
    let mut clusters: Vec<Cluster> = map
        .into_iter()
        .map(|((category, key_attribute, key_value), members)| Cluster {
            category,
            key_attribute,
            key_value,
            members,
        })
        .collect();
    // Deterministic output order.
    clusters.sort_by(|a, b| {
        (a.category, &a.key_attribute, &a.key_value).cmp(&(
            b.category,
            &b.key_attribute,
            &b.key_value,
        ))
    });
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{MerchantId, OfferId};

    fn ro(id: u64, category: u32, pairs: &[(&str, &str)]) -> ReconciledOffer {
        ReconciledOffer::new(
            OfferId(id),
            MerchantId(0),
            CategoryId(category),
            pairs.iter().map(|(a, v)| (a.to_string(), v.to_string())).collect(),
        )
    }

    #[test]
    fn groups_by_normalized_key() {
        let offers = vec![
            ro(0, 0, &[("MPN", "HDT725050VLA360"), ("Speed", "7200")]),
            ro(1, 0, &[("MPN", "hdt-725050-vla360"), ("Speed", "7200 rpm")]),
            ro(2, 0, &[("MPN", "OTHER123"), ("Speed", "5400")]),
        ];
        let clusters = cluster_by_key(offers, &["MPN".to_string()]);
        assert_eq!(clusters.len(), 2);
        let big = clusters.iter().find(|c| c.members.len() == 2).unwrap();
        assert_eq!(big.key_value, "hdt725050vla360");
        assert_eq!(big.key_attribute, "MPN");
    }

    #[test]
    fn key_preference_order() {
        // Offer 0 has both keys; offer 1 only UPC. With MPN preferred,
        // they land in different clusters even though UPC matches.
        let offers = vec![
            ro(0, 0, &[("MPN", "ABC123"), ("UPC", "111222333444")]),
            ro(1, 0, &[("UPC", "111222333444")]),
        ];
        let clusters = cluster_by_key(offers, &["MPN".to_string(), "UPC".to_string()]);
        assert_eq!(clusters.len(), 2);
        let attrs: Vec<_> = clusters.iter().map(|c| c.key_attribute.as_str()).collect();
        assert!(attrs.contains(&"MPN") && attrs.contains(&"UPC"));
    }

    #[test]
    fn empty_normalized_key_falls_through_to_next_attribute() {
        // The preferred key is present but normalizes to empty ("—", "***",
        // whitespace); the offer must fall through to UPC, not be dropped.
        let offers = vec![
            ro(0, 0, &[("MPN", "—"), ("UPC", "111222333444")]),
            ro(1, 0, &[("MPN", "***"), ("UPC", "111222333444")]),
            ro(2, 0, &[("MPN", "  "), ("UPC", "111222333444")]),
        ];
        let clusters = cluster_by_key(offers, &["MPN".to_string(), "UPC".to_string()]);
        assert_eq!(clusters.len(), 1, "all three fall through to the same UPC cluster");
        assert_eq!(clusters[0].key_attribute, "UPC");
        assert_eq!(clusters[0].key_value, "111222333444");
        assert_eq!(clusters[0].members.len(), 3);
    }

    #[test]
    fn all_keys_empty_normalized_drops_offer() {
        let offers = vec![ro(0, 0, &[("MPN", "—"), ("UPC", "///")])];
        assert!(cluster_by_key(offers, &["MPN".to_string(), "UPC".to_string()]).is_empty());
    }

    #[test]
    fn offers_without_keys_are_dropped() {
        let offers = vec![ro(0, 0, &[("Speed", "7200")])];
        assert!(cluster_by_key(offers, &["MPN".to_string()]).is_empty());
    }

    #[test]
    fn categories_never_mix() {
        let offers = vec![ro(0, 0, &[("MPN", "SAME")]), ro(1, 1, &[("MPN", "SAME")])];
        let clusters = cluster_by_key(offers, &["MPN".to_string()]);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn normalize_key_variants_agree() {
        assert_eq!(normalize_key("HDT725050VLA360"), normalize_key("hdt 725050 vla360"));
        assert_eq!(normalize_key("ABC-123"), "abc123");
        assert_eq!(normalize_key("  "), "");
    }

    #[test]
    fn route_matches_cluster_membership() {
        let keys = KeyAttributes::new(["MPN", "UPC"]);
        let offer = ro(0, 0, &[("MPN", "HDT-725050"), ("UPC", "111")]);
        assert_eq!(keys.route(&offer), Some(("MPN".to_string(), "hdt725050".to_string())));
        let fallthrough = ro(1, 0, &[("MPN", "--"), ("UPC", "111")]);
        assert_eq!(keys.route(&fallthrough), Some(("UPC".to_string(), "111".to_string())));
        let keyless = ro(2, 0, &[("Speed", "7200")]);
        assert_eq!(keys.route(&keyless), None);
    }

    #[test]
    fn deterministic_ordering() {
        let mk = || {
            vec![ro(0, 1, &[("MPN", "B2")]), ro(1, 0, &[("MPN", "A1")]), ro(2, 0, &[("MPN", "Z9")])]
        };
        let a = cluster_by_key(mk(), &["MPN".to_string()]);
        let b = cluster_by_key(mk(), &["MPN".to_string()]);
        let keys_a: Vec<_> = a.iter().map(|c| c.key_value.clone()).collect();
        let keys_b: Vec<_> = b.iter().map(|c| c.key_value.clone()).collect();
        assert_eq!(keys_a, keys_b);
        assert_eq!(keys_a, ["a1", "z9", "b2"]);
    }
}
