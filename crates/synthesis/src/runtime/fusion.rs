//! Value Fusion (Section 4 and Appendix A): pick one representative value
//! per catalog attribute from a cluster of offers.
//!
//! Plain majority voting fails on multi-token textual values ("Windows
//! Vista" vs "Microsoft Windows Vista" vs "Microsoft Vista" — three-way
//! tie). The paper generalizes voting to the term level: build a term
//! vector per value, compute the centroid, and choose the value closest to
//! the centroid in Euclidean distance. In the example, "Microsoft Windows
//! Vista" wins because it contains the terms shared by the other values.

use std::collections::HashMap;

use pse_text::tokenize::for_each_token;
use serde::{Deserialize, Serialize};

/// Which fusion rule the pipeline applies per attribute (the paper uses
/// [`FusionStrategy::CentroidVote`]; the others are ablation baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Appendix A's generalization of majority voting: term-vector
    /// centroid, pick the member value closest to it.
    #[default]
    CentroidVote,
    /// Plain majority voting over exact (surface) values; ties break
    /// lexicographically.
    MajorityExact,
    /// Pick the longest value (a common heuristic: "most informative").
    LongestValue,
    /// Pick the first value encountered (no fusion at all).
    FirstSeen,
}

/// Fuse with an explicit strategy. See [`fuse_values`] for the default.
pub fn fuse_values_with<S: AsRef<str>>(
    values: &[S],
    strategy: FusionStrategy,
) -> Option<FusedValue> {
    match strategy {
        FusionStrategy::CentroidVote => fuse_values(values),
        FusionStrategy::MajorityExact => {
            if values.is_empty() {
                return None;
            }
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for v in values {
                *counts.entry(v.as_ref()).or_insert(0) += 1;
            }
            let (value, _) = counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))?;
            Some(FusedValue { value: value.to_string(), support: values.len(), distance: 0.0 })
        }
        FusionStrategy::LongestValue => {
            let value = values
                .iter()
                .map(AsRef::as_ref)
                .max_by(|a, b| a.len().cmp(&b.len()).then(b.cmp(a)))?;
            Some(FusedValue { value: value.to_string(), support: values.len(), distance: 0.0 })
        }
        FusionStrategy::FirstSeen => values.first().map(|v| FusedValue {
            value: v.as_ref().to_string(),
            support: values.len(),
            distance: 0.0,
        }),
    }
}

/// The outcome of fusing one attribute's values.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedValue {
    /// The representative value (one of the inputs, surface form).
    pub value: String,
    /// Number of cluster members that carried this attribute.
    pub support: usize,
    /// Euclidean distance of the chosen value to the term centroid (0 when
    /// all members agree).
    pub distance: f64,
}

/// Fuse a multiset of values via term-level generalized majority voting.
///
/// Returns `None` for an empty input. Ties on distance break toward the
/// more frequent value, then lexicographically (for determinism).
pub fn fuse_values<S: AsRef<str>>(values: &[S]) -> Option<FusedValue> {
    if values.is_empty() {
        return None;
    }
    // Term universe and per-value term vectors (binary, per Appendix A).
    let mut term_index: HashMap<String, usize> = HashMap::new();
    let mut vectors: Vec<Vec<usize>> = Vec::with_capacity(values.len());
    for v in values {
        let mut dims = Vec::new();
        for_each_token(v.as_ref(), |t| {
            // First-seen term ids, exactly like the historical
            // `term_index.entry(tokens(..))` loop; insert allocates only for
            // new terms.
            let idx = match term_index.get(t) {
                Some(&idx) => idx,
                None => {
                    let next = term_index.len();
                    term_index.insert(t.to_string(), next);
                    next
                }
            };
            if !dims.contains(&idx) {
                dims.push(idx);
            }
        });
        vectors.push(dims);
    }
    let dim = term_index.len();
    // Centroid over all value vectors (values appearing k times contribute
    // k identical vectors, so frequency weights the centroid naturally).
    let mut centroid = vec![0.0f64; dim];
    for dims in &vectors {
        for &d in dims {
            centroid[d] += 1.0;
        }
    }
    let n = values.len() as f64;
    for c in &mut centroid {
        *c /= n;
    }
    // Count duplicates for tie-breaking.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.as_ref()).or_insert(0) += 1;
    }

    let mut best: Option<(f64, usize, &str)> = None; // (distance, -count, value)
                                                     // O(1) membership bitmap over the term universe, reused across values
                                                     // (set before, cleared after each distance computation). The summation
                                                     // order over `d` is unchanged, so distances are bit-identical to the
                                                     // former O(|dims|) `contains` probe.
    let mut member = vec![false; dim];
    for (v, dims) in values.iter().zip(&vectors) {
        let v = v.as_ref();
        for &d in dims {
            member[d] = true;
        }
        let mut dist2 = 0.0;
        for (d, c) in centroid.iter().enumerate() {
            let x = if member[d] { 1.0 } else { 0.0 };
            dist2 += (x - c) * (x - c);
        }
        for &d in dims {
            member[d] = false;
        }
        let dist = dist2.sqrt();
        let count = counts[v];
        let better = match &best {
            None => true,
            Some((bd, bc, bv)) => {
                dist < bd - 1e-12
                    || ((dist - bd).abs() <= 1e-12 && (count > *bc || (count == *bc && v < *bv)))
            }
        };
        if better {
            best = Some((dist, count, v));
        }
    }
    best.map(|(distance, _, value)| FusedValue {
        value: value.to_string(),
        support: values.len(),
        distance,
    })
}

/// Streaming form of [`fuse_values_with`]: push values one at a time (in
/// member order), read the fused result off at any point with
/// [`FusionAccumulator::finish`].
///
/// `finish` returns **bit-identical** output — value, support, and the
/// f64 `distance` — to a batch `fuse_values_with` call over the full
/// pushed sequence (pinned by the `incremental_matches_batch` proptest).
/// The accumulator keeps per-term containment counts, the distinct
/// surfaces with their multiplicities, and the occurrence sequence as
/// distinct-indices; `finish` recomputes each distinct value's distance
/// once (`O(distinct × terms)`) and replays the batch path's exact
/// occurrence-order selection loop (`O(values)` float compares, no
/// tokenization). A `pse-store` re-fusion after an ingest batch therefore
/// costs the new members' tokens, not the whole cluster's.
#[derive(Debug, Clone, Default)]
pub struct FusionAccumulator {
    /// First-seen term ids over the pushed sequence — the same assignment
    /// order the batch loop produces over the concatenation.
    term_index: HashMap<String, usize>,
    /// Number of pushed values containing term `d` (duplicates of a
    /// surface each count, exactly like the batch centroid sum).
    counts: Vec<usize>,
    /// Distinct surfaces in first-seen order, with multiplicity and the
    /// deduplicated term dims any one occurrence vectorizes to.
    distinct: Vec<DistinctValue>,
    /// Surface → index into `distinct`.
    by_value: HashMap<String, usize>,
    /// The occurrence sequence, as indices into `distinct`. Kept so the
    /// selection loop in `finish` visits candidates in the batch path's
    /// occurrence order — the 1e-12 distance epsilon makes "better than
    /// the running best" order-sensitive in principle, and bit-identity
    /// is the whole contract.
    seq: Vec<u32>,
}

#[derive(Debug, Clone)]
struct DistinctValue {
    value: String,
    count: usize,
    dims: Vec<usize>,
}

impl FusionAccumulator {
    /// Fold one value occurrence in. Order matters: push in member order.
    pub fn push(&mut self, v: &str) {
        if let Some(&i) = self.by_value.get(v) {
            let d = &mut self.distinct[i];
            d.count += 1;
            // A repeated surface tokenizes to the same dims (term ids are
            // stable once assigned), so skip the tokenizer and bump the
            // containment counts directly.
            for &t in &d.dims {
                self.counts[t] += 1;
            }
            self.seq.push(i as u32);
            return;
        }
        let mut dims = Vec::new();
        let term_index = &mut self.term_index;
        for_each_token(v, |t| {
            let idx = match term_index.get(t) {
                Some(&idx) => idx,
                None => {
                    let next = term_index.len();
                    term_index.insert(t.to_string(), next);
                    next
                }
            };
            if !dims.contains(&idx) {
                dims.push(idx);
            }
        });
        self.counts.resize(self.term_index.len(), 0);
        for &t in &dims {
            self.counts[t] += 1;
        }
        let i = self.distinct.len();
        self.by_value.insert(v.to_string(), i);
        self.distinct.push(DistinctValue { value: v.to_string(), count: 1, dims });
        self.seq.push(i as u32);
    }

    /// Number of values pushed so far (= the `support` `finish` reports).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether no value has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// What `fuse_values_with(&pushed_values, strategy)` would return.
    pub fn finish(&self, strategy: FusionStrategy) -> Option<FusedValue> {
        let support = self.seq.len();
        if support == 0 {
            return None;
        }
        match strategy {
            FusionStrategy::CentroidVote => self.finish_centroid(),
            // The three ablation baselines order candidates totally
            // (count/length, then reverse-lexicographic), so the unique
            // maximum over distinct surfaces equals the batch maximum
            // over occurrences.
            FusionStrategy::MajorityExact => self
                .distinct
                .iter()
                .max_by(|a, b| a.count.cmp(&b.count).then(b.value.cmp(&a.value)))
                .map(|d| FusedValue { value: d.value.clone(), support, distance: 0.0 }),
            FusionStrategy::LongestValue => self
                .distinct
                .iter()
                .map(|d| d.value.as_str())
                .max_by(|a, b| a.len().cmp(&b.len()).then(b.cmp(a)))
                .map(|v| FusedValue { value: v.to_string(), support, distance: 0.0 }),
            FusionStrategy::FirstSeen => self.distinct.first().map(|d| FusedValue {
                value: d.value.clone(),
                support,
                distance: 0.0,
            }),
        }
    }

    fn finish_centroid(&self) -> Option<FusedValue> {
        let dim = self.counts.len();
        let n = self.seq.len() as f64;
        // `counts[d]` values are exact in f64 (integers well below 2^53),
        // so `counts[d] / n` is bit-identical to the batch path's
        // sum-of-1.0s divided by n.
        let centroid: Vec<f64> = self.counts.iter().map(|&c| c as f64 / n).collect();
        // One distance per distinct surface, with the batch loop's exact
        // summation order over `d`; duplicate occurrences recompute the
        // same bits in the batch path, so sharing is lossless.
        let mut member = vec![false; dim];
        let dists: Vec<f64> = self
            .distinct
            .iter()
            .map(|dv| {
                for &d in &dv.dims {
                    member[d] = true;
                }
                let mut dist2 = 0.0;
                for (d, c) in centroid.iter().enumerate() {
                    let x = if member[d] { 1.0 } else { 0.0 };
                    dist2 += (x - c) * (x - c);
                }
                for &d in &dv.dims {
                    member[d] = false;
                }
                dist2.sqrt()
            })
            .collect();
        // Replay the batch selection in occurrence order.
        let mut best: Option<(f64, usize, &str)> = None;
        for &i in &self.seq {
            let dv = &self.distinct[i as usize];
            let (dist, count, v) = (dists[i as usize], dv.count, dv.value.as_str());
            let better = match &best {
                None => true,
                Some((bd, bc, bv)) => {
                    dist < bd - 1e-12
                        || ((dist - bd).abs() <= 1e-12
                            && (count > *bc || (count == *bc && v < *bv)))
                }
            };
            if better {
                best = Some((dist, count, v));
            }
        }
        best.map(|(distance, _, value)| FusedValue {
            value: value.to_string(),
            support: self.seq.len(),
            distance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_appendix_a_example() {
        // v1 = "Windows Vista", v2 = "Microsoft Windows Vista",
        // v3 = "Microsoft Vista" → centroid (2/3, 2/3, 1), v2 closest.
        let fused =
            fuse_values(&["Windows Vista", "Microsoft Windows Vista", "Microsoft Vista"]).unwrap();
        assert_eq!(fused.value, "Microsoft Windows Vista");
        assert!((fused.distance - 0.47).abs() < 0.01, "distance {}", fused.distance);
        assert_eq!(fused.support, 3);
    }

    #[test]
    fn plain_majority_single_token() {
        // Four votes for 1024, one for 2048 (the paper's first example).
        let fused = fuse_values(&["1024", "1024", "1024", "1024", "2048"]).unwrap();
        assert_eq!(fused.value, "1024");
    }

    #[test]
    fn unanimous_values_have_zero_distance() {
        let fused = fuse_values(&["7200 rpm", "7200 rpm"]).unwrap();
        assert_eq!(fused.value, "7200 rpm");
        assert!(fused.distance < 1e-12);
    }

    #[test]
    fn single_value_is_returned() {
        let fused = fuse_values(&["500 GB"]).unwrap();
        assert_eq!(fused.value, "500 GB");
        assert_eq!(fused.support, 1);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(fuse_values::<&str>(&[]).is_none());
    }

    #[test]
    fn equivalent_tokenizations_vote_together() {
        // "500GB" and "500 GB" have identical token vectors, so together
        // they outvote "250 GB".
        let fused = fuse_values(&["500GB", "500 GB", "250 GB"]).unwrap();
        assert!(fused.value.contains("500"));
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let a = fuse_values(&["alpha", "beta"]).unwrap();
        let b = fuse_values(&["beta", "alpha"]).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.value, "alpha", "lexicographic tie-break");
    }

    #[test]
    fn frequency_beats_lexicographic_on_ties() {
        let fused = fuse_values(&["zeta", "zeta", "alpha"]).unwrap();
        assert_eq!(fused.value, "zeta");
    }

    #[test]
    fn strategies_differ_on_multi_token_values() {
        let values = ["Windows Vista", "Microsoft Windows Vista", "Microsoft Vista"];
        let centroid = fuse_values_with(&values, FusionStrategy::CentroidVote).unwrap();
        assert_eq!(centroid.value, "Microsoft Windows Vista");
        // Exact majority has a 3-way tie; lexicographic pick.
        let exact = fuse_values_with(&values, FusionStrategy::MajorityExact).unwrap();
        assert_eq!(exact.value, "Microsoft Vista");
        let longest = fuse_values_with(&values, FusionStrategy::LongestValue).unwrap();
        assert_eq!(longest.value, "Microsoft Windows Vista");
        let first = fuse_values_with(&values, FusionStrategy::FirstSeen).unwrap();
        assert_eq!(first.value, "Windows Vista");
    }

    #[test]
    fn strategies_agree_on_unanimous_values() {
        for strategy in [
            FusionStrategy::CentroidVote,
            FusionStrategy::MajorityExact,
            FusionStrategy::LongestValue,
            FusionStrategy::FirstSeen,
        ] {
            let fused = fuse_values_with(&["500 GB", "500 GB"], strategy).unwrap();
            assert_eq!(fused.value, "500 GB", "{strategy:?}");
        }
    }

    #[test]
    fn strategies_handle_empty_input() {
        for strategy in [
            FusionStrategy::CentroidVote,
            FusionStrategy::MajorityExact,
            FusionStrategy::LongestValue,
            FusionStrategy::FirstSeen,
        ] {
            assert!(fuse_values_with::<&str>(&[], strategy).is_none());
        }
    }
}
