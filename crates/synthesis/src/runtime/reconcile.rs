//! Schema Reconciliation (Section 4).
//!
//! "Let `o` be an offer for category `C` and merchant `M`, and `⟨A, v⟩` one
//! of the attribute–value pairs extracted from the merchant's Web page. If
//! `⟨B, A, M, C⟩` is an attribute correspondence […], then the Schema
//! Reconciliation component outputs a pair `⟨B, v⟩`. Otherwise, the pair
//! `⟨A, v⟩` is discarded." The discarding is what filters extraction noise:
//! bogus pairs never earn a correspondence during offline learning.

use pse_core::{CategoryId, CorrespondenceSet, MerchantId, OfferId, Spec};
use pse_text::normalize::normalize_attribute_name;
use serde::{Deserialize, Serialize};

/// An offer whose pairs have been translated into catalog attribute names.
///
/// Attribute names are stored in **normalized** form (see
/// [`normalize_attribute_name`]), computed once at construction. Lookups in
/// the fusion hot loop ([`ReconciledOffer::value_of_normalized`]) therefore
/// compare raw strings instead of re-normalizing every stored pair on every
/// call — previously an O(schema × members × pairs) redundancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconciledOffer {
    /// The source offer.
    pub offer: OfferId,
    /// Its merchant.
    pub merchant: MerchantId,
    /// Its category.
    pub category: CategoryId,
    /// Pairs in catalog vocabulary: `(normalized catalog attribute, value)`.
    /// Private so every construction path goes through [`ReconciledOffer::new`],
    /// which upholds the names-are-normalized invariant.
    pairs: Vec<(String, String)>,
}

/// Translate an extracted offer specification into catalog vocabulary,
/// discarding pairs with no correspondence.
pub fn reconcile(
    offer: OfferId,
    merchant: MerchantId,
    category: CategoryId,
    spec: &Spec,
    correspondences: &CorrespondenceSet,
) -> ReconciledOffer {
    let mut pairs = Vec::new();
    for pair in spec.iter() {
        if let Some(catalog_attr) = correspondences.translate(merchant, category, &pair.name) {
            pairs.push((catalog_attr.to_string(), pair.value.clone()));
        }
    }
    ReconciledOffer::new(offer, merchant, category, pairs)
}

impl ReconciledOffer {
    /// Build from catalog-vocabulary pairs, normalizing each attribute name
    /// once up front.
    pub fn new(
        offer: OfferId,
        merchant: MerchantId,
        category: CategoryId,
        pairs: Vec<(String, String)>,
    ) -> Self {
        let pairs = pairs.into_iter().map(|(a, v)| (normalize_attribute_name(&a), v)).collect();
        Self { offer, merchant, category, pairs }
    }

    /// The reconciled pairs: `(normalized catalog attribute, value)`.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// First value of a catalog attribute, if present. `catalog_attr` may be
    /// in any surface form; it is normalized once per call.
    pub fn value_of(&self, catalog_attr: &str) -> Option<&str> {
        self.value_of_normalized(&normalize_attribute_name(catalog_attr))
    }

    /// First value of an **already-normalized** catalog attribute name.
    /// The raw comparison makes repeated lookups (per schema attribute, per
    /// cluster member) free of redundant normalization.
    pub fn value_of_normalized(&self, target: &str) -> Option<&str> {
        self.pairs.iter().find(|(a, _)| a == target).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::AttributeCorrespondence;

    fn correspondences() -> CorrespondenceSet {
        CorrespondenceSet::from_correspondences([
            AttributeCorrespondence {
                catalog_attribute: "Speed".into(),
                merchant_attribute: "rpm".into(),
                merchant: MerchantId(0),
                category: CategoryId(0),
                score: 0.9,
            },
            AttributeCorrespondence {
                catalog_attribute: "Capacity".into(),
                merchant_attribute: "hard disk size".into(),
                merchant: MerchantId(0),
                category: CategoryId(0),
                score: 0.8,
            },
        ])
    }

    #[test]
    fn translates_known_pairs_and_discards_unknown() {
        let spec = Spec::from_pairs([
            ("RPM", "7200 rpm"),
            ("Hard Disk Size", "500"),
            ("John D.", "Great drive!"),  // extraction noise
            ("Shipping Weight", "2 lbs"), // junk attribute
        ]);
        let r = reconcile(OfferId(1), MerchantId(0), CategoryId(0), &spec, &correspondences());
        assert_eq!(r.pairs().len(), 2);
        assert_eq!(r.value_of("Speed"), Some("7200 rpm"));
        assert_eq!(r.value_of("Capacity"), Some("500"));
        assert_eq!(r.value_of("Brand"), None);
    }

    #[test]
    fn stored_names_are_normalized_once() {
        let spec = Spec::from_pairs([("RPM", "7200 rpm")]);
        let r = reconcile(OfferId(1), MerchantId(0), CategoryId(0), &spec, &correspondences());
        assert_eq!(r.pairs(), [("speed".to_string(), "7200 rpm".to_string())]);
        // Any surface form of the catalog attribute resolves...
        assert_eq!(r.value_of("  SPEED: "), Some("7200 rpm"));
        // ...and the pre-normalized fast path agrees.
        assert_eq!(r.value_of_normalized("speed"), Some("7200 rpm"));
        assert_eq!(r.value_of_normalized("Speed"), None, "fast path takes normalized names only");
    }

    #[test]
    fn wrong_merchant_or_category_discards_everything() {
        let spec = Spec::from_pairs([("RPM", "7200")]);
        let other_merchant =
            reconcile(OfferId(1), MerchantId(5), CategoryId(0), &spec, &correspondences());
        assert!(other_merchant.pairs().is_empty());
        let other_category =
            reconcile(OfferId(1), MerchantId(0), CategoryId(7), &spec, &correspondences());
        assert!(other_category.pairs().is_empty());
    }

    #[test]
    fn empty_spec_reconciles_to_empty() {
        let r =
            reconcile(OfferId(0), MerchantId(0), CategoryId(0), &Spec::new(), &correspondences());
        assert!(r.pairs().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = Spec::from_pairs([("RPM", "7200 rpm"), ("Hard Disk Size", "500")]);
        let r = reconcile(OfferId(3), MerchantId(0), CategoryId(0), &spec, &correspondences());
        let json = serde_json::to_string(&r).unwrap();
        let back: ReconciledOffer = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
