//! Schema Reconciliation (Section 4).
//!
//! "Let `o` be an offer for category `C` and merchant `M`, and `⟨A, v⟩` one
//! of the attribute–value pairs extracted from the merchant's Web page. If
//! `⟨B, A, M, C⟩` is an attribute correspondence […], then the Schema
//! Reconciliation component outputs a pair `⟨B, v⟩`. Otherwise, the pair
//! `⟨A, v⟩` is discarded." The discarding is what filters extraction noise:
//! bogus pairs never earn a correspondence during offline learning.

use pse_core::{CategoryId, CorrespondenceSet, MerchantId, OfferId, Spec};

/// An offer whose pairs have been translated into catalog attribute names.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconciledOffer {
    /// The source offer.
    pub offer: OfferId,
    /// Its merchant.
    pub merchant: MerchantId,
    /// Its category.
    pub category: CategoryId,
    /// Pairs in catalog vocabulary: `(catalog attribute, value)`.
    pub pairs: Vec<(String, String)>,
}

/// Translate an extracted offer specification into catalog vocabulary,
/// discarding pairs with no correspondence.
pub fn reconcile(
    offer: OfferId,
    merchant: MerchantId,
    category: CategoryId,
    spec: &Spec,
    correspondences: &CorrespondenceSet,
) -> ReconciledOffer {
    let mut pairs = Vec::new();
    for pair in spec.iter() {
        if let Some(catalog_attr) = correspondences.translate(merchant, category, &pair.name) {
            pairs.push((catalog_attr.to_string(), pair.value.clone()));
        }
    }
    ReconciledOffer { offer, merchant, category, pairs }
}

impl ReconciledOffer {
    /// First value of a catalog attribute, if present.
    pub fn value_of(&self, catalog_attr: &str) -> Option<&str> {
        let target = pse_text::normalize::normalize_attribute_name(catalog_attr);
        self.pairs
            .iter()
            .find(|(a, _)| pse_text::normalize::normalize_attribute_name(a) == target)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::AttributeCorrespondence;

    fn correspondences() -> CorrespondenceSet {
        CorrespondenceSet::from_correspondences([
            AttributeCorrespondence {
                catalog_attribute: "Speed".into(),
                merchant_attribute: "rpm".into(),
                merchant: MerchantId(0),
                category: CategoryId(0),
                score: 0.9,
            },
            AttributeCorrespondence {
                catalog_attribute: "Capacity".into(),
                merchant_attribute: "hard disk size".into(),
                merchant: MerchantId(0),
                category: CategoryId(0),
                score: 0.8,
            },
        ])
    }

    #[test]
    fn translates_known_pairs_and_discards_unknown() {
        let spec = Spec::from_pairs([
            ("RPM", "7200 rpm"),
            ("Hard Disk Size", "500"),
            ("John D.", "Great drive!"),  // extraction noise
            ("Shipping Weight", "2 lbs"), // junk attribute
        ]);
        let r = reconcile(OfferId(1), MerchantId(0), CategoryId(0), &spec, &correspondences());
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.value_of("Speed"), Some("7200 rpm"));
        assert_eq!(r.value_of("Capacity"), Some("500"));
        assert_eq!(r.value_of("Brand"), None);
    }

    #[test]
    fn wrong_merchant_or_category_discards_everything() {
        let spec = Spec::from_pairs([("RPM", "7200")]);
        let other_merchant =
            reconcile(OfferId(1), MerchantId(5), CategoryId(0), &spec, &correspondences());
        assert!(other_merchant.pairs.is_empty());
        let other_category =
            reconcile(OfferId(1), MerchantId(0), CategoryId(7), &spec, &correspondences());
        assert!(other_category.pairs.is_empty());
    }

    #[test]
    fn empty_spec_reconciles_to_empty() {
        let r =
            reconcile(OfferId(0), MerchantId(0), CategoryId(0), &Spec::new(), &correspondences());
        assert!(r.pairs.is_empty());
    }
}
