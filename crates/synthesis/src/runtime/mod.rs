//! The Run-Time Offer Processing Pipeline (Section 4, Figure 4):
//! extraction → schema reconciliation → clustering → value fusion.

pub mod cluster;
pub mod fusion;
pub mod reconcile;

use pse_core::{Catalog, CategoryId, CorrespondenceSet, Offer, OfferId, Spec};
use pse_text::normalize::normalize_attribute_name;
use serde::{Deserialize, Serialize};

use crate::provider::SpecProvider;
pub use cluster::{cluster_by_key, normalize_key, Cluster, KeyAttributes};
pub use fusion::{fuse_values, fuse_values_with, FusedValue, FusionAccumulator, FusionStrategy};
pub use reconcile::{reconcile, ReconciledOffer};

/// Configuration of the run-time pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Key attributes used for clustering, in preference order.
    pub key_attributes: Vec<String>,
    /// Minimum cluster size for a product to be synthesized (1 = every
    /// cluster becomes a product, the paper's setting).
    pub min_cluster_size: usize,
    /// Do not emit the key attribute used for clustering as part of the
    /// fused specification when `false`. The paper keeps keys; so do we.
    pub include_keys_in_spec: bool,
    /// Value-fusion rule (the paper's centroid voting by default).
    pub fusion: FusionStrategy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            key_attributes: vec!["MPN".to_string(), "UPC".to_string()],
            min_cluster_size: 1,
            include_keys_in_spec: true,
            fusion: FusionStrategy::default(),
        }
    }
}

/// One synthesized product instance, compatible with the catalog schema of
/// its category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthesizedProduct {
    /// Category of the product.
    pub category: CategoryId,
    /// Key attribute that identified the cluster.
    pub key_attribute: String,
    /// Normalized key value.
    pub key_value: String,
    /// The fused specification (attribute names from the catalog schema).
    pub spec: Spec,
    /// The offers fused into this product.
    pub offers: Vec<OfferId>,
}

/// Output of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct SynthesisResult {
    /// The synthesized products.
    pub products: Vec<SynthesizedProduct>,
    /// Offers processed.
    pub offers_in: usize,
    /// Offers that survived reconciliation with at least one pair.
    pub offers_reconciled: usize,
    /// Offers that carried a usable key and joined a cluster.
    pub offers_clustered: usize,
}

impl SynthesisResult {
    /// Total synthesized attribute–value pairs across all products.
    pub fn total_attributes(&self) -> usize {
        self.products.iter().map(|p| p.spec.len()).sum()
    }
}

/// Extract and reconcile a batch of offers in parallel, preserving offer
/// order. Shared by [`RuntimePipeline::process`] and the incremental
/// `pse-store` ingest path, so both produce identical [`ReconciledOffer`]
/// sequences (and therefore identical products) for the same input.
///
/// Emits the `runtime.offers_in` / `runtime.drop.*` / `runtime.pairs_*` /
/// `runtime.offers_reconciled` counters and opens a `runtime.reconcile`
/// span nested under whatever span the caller holds (so the pipeline path
/// stays `runtime.process.runtime.reconcile` while the store ingest path
/// reports `store.ingest.runtime.reconcile`).
pub fn reconcile_batch<P: SpecProvider>(
    offers: &[Offer],
    correspondences: &CorrespondenceSet,
    provider: &P,
) -> Vec<ReconciledOffer> {
    let _span = pse_obs::span("runtime.reconcile");
    pse_obs::add("runtime.offers_in", offers.len() as u64);
    let reconciled: Vec<ReconciledOffer> = pse_par::par_map_chunked(offers, 16, |offer| {
        let Some(category) = offer.category else {
            pse_obs::incr("runtime.drop.no_category");
            return None;
        };
        let spec = provider.spec(offer);
        let r = reconcile(offer.id, offer.merchant, category, &spec, correspondences);
        pse_obs::add(
            "runtime.pairs_discarded_unmapped",
            spec.len().saturating_sub(r.pairs().len()) as u64,
        );
        if r.pairs().is_empty() {
            pse_obs::incr("runtime.drop.all_unmapped");
            return None;
        }
        pse_obs::add("runtime.pairs_kept", r.pairs().len() as u64);
        Some(r)
    })
    .into_iter()
    .flatten()
    .collect();
    pse_obs::add("runtime.offers_reconciled", reconciled.len() as u64);
    reconciled
}

/// Fuse one cluster into a synthesized product, attribute by attribute in
/// the category's schema order (so the output is catalog-compatible by
/// construction). Shared by [`RuntimePipeline::process`] and the
/// incremental `pse-store` re-fusion path.
///
/// Returns `None` when the catalog does not know the cluster's category
/// (offer classified against another taxonomy, stale id) — a counted drop,
/// not a panic.
pub fn fuse_cluster(
    catalog: &Catalog,
    cluster: &Cluster,
    config: &RuntimeConfig,
) -> Option<SynthesizedProduct> {
    let Some(schema) = catalog.taxonomy().try_schema(cluster.category) else {
        pse_obs::incr("runtime.drop.unknown_category");
        return None;
    };
    let mut spec = Spec::new();
    for attr in schema.iter() {
        if !config.include_keys_in_spec && attr.is_key {
            continue;
        }
        // Normalize the schema attribute name once per cluster, not once
        // per member (members store pre-normalized names).
        let target = normalize_attribute_name(&attr.name);
        let values: Vec<&str> =
            cluster.members.iter().filter_map(|m| m.value_of_normalized(&target)).collect();
        if let Some(fused) = fuse_values_with(&values, config.fusion) {
            spec.push(attr.name.clone(), fused.value);
        }
    }
    Some(SynthesizedProduct {
        category: cluster.category,
        key_attribute: cluster.key_attribute.clone(),
        key_value: cluster.key_value.clone(),
        spec,
        offers: cluster.members.iter().map(|m| m.offer).collect(),
    })
}

/// Incrementally maintained fusion state for one cluster: a
/// [`FusionAccumulator`] per fused schema attribute, fed members in
/// stream order.
///
/// `pse-store` keeps one per cluster so re-fusing after an ingest batch
/// costs the *new* members' tokens instead of re-tokenizing the whole
/// cluster — the difference between O(batch) and O(corpus) steady-state
/// ingest. The cache is valid only while the member list grows by
/// appending; any other mutation (retraction) must [`ClusterFusionCache::reset`]
/// it, after which the next [`advance_cluster_fusion`] rebuilds from the
/// full member list. Never persisted: snapshots carry members only, and a
/// restored store rebuilds caches lazily on first re-fusion.
#[derive(Debug, Clone, Default)]
pub struct ClusterFusionCache {
    /// How many members have been folded in.
    consumed: usize,
    /// One accumulator per schema attribute that fusion emits, in schema
    /// order; `None` until the first advance resolves the schema (and
    /// forever for categories the catalog does not know).
    attrs: Option<Vec<AttrAccumulator>>,
}

#[derive(Debug, Clone)]
struct AttrAccumulator {
    /// Schema surface name — the fused spec's key.
    name: String,
    /// Normalized name members are probed with.
    target: String,
    accum: FusionAccumulator,
}

impl ClusterFusionCache {
    /// Forget everything; the next [`advance_cluster_fusion`] rebuilds
    /// from scratch. Call after any non-append member mutation.
    pub fn reset(&mut self) {
        self.consumed = 0;
        self.attrs = None;
    }

    /// Members folded in so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

/// Fold `members[cache.consumed()..]` into the cache, building the
/// per-attribute accumulators from the category schema on first use.
/// Returns `false` — leaving the cache unusable — when the catalog does
/// not know the category, counting the drop exactly like [`fuse_cluster`].
pub fn advance_cluster_fusion(
    catalog: &Catalog,
    category: CategoryId,
    members: &[ReconciledOffer],
    config: &RuntimeConfig,
    cache: &mut ClusterFusionCache,
) -> bool {
    if cache.attrs.is_none() {
        let Some(schema) = catalog.taxonomy().try_schema(category) else {
            pse_obs::incr("runtime.drop.unknown_category");
            return false;
        };
        let mut attrs = Vec::new();
        for attr in schema.iter() {
            if !config.include_keys_in_spec && attr.is_key {
                continue;
            }
            attrs.push(AttrAccumulator {
                name: attr.name.clone(),
                target: normalize_attribute_name(&attr.name),
                accum: FusionAccumulator::default(),
            });
        }
        cache.attrs = Some(attrs);
        cache.consumed = 0;
    }
    let attrs = cache.attrs.as_mut().expect("attrs built above");
    for m in &members[cache.consumed..] {
        for aa in attrs.iter_mut() {
            if let Some(v) = m.value_of_normalized(&aa.target) {
                aa.accum.push(v);
            }
        }
    }
    cache.consumed = members.len();
    true
}

/// [`fuse_cluster`] from a fully advanced cache — `O(Σ distinct × terms)`
/// plus the offer-id list, independent of how many members the cluster
/// has accumulated. The cache must have been advanced over exactly
/// `cluster.members` (debug-asserted); returns `None` for unknown
/// categories, where [`advance_cluster_fusion`] could never build the
/// accumulators.
pub fn fuse_cluster_cached(
    cluster: &Cluster,
    config: &RuntimeConfig,
    cache: &ClusterFusionCache,
) -> Option<SynthesizedProduct> {
    let attrs = cache.attrs.as_ref()?;
    debug_assert_eq!(
        cache.consumed,
        cluster.members.len(),
        "fusion cache not advanced to the cluster's member list"
    );
    let mut spec = Spec::new();
    for aa in attrs {
        if let Some(fused) = aa.accum.finish(config.fusion) {
            spec.push(aa.name.clone(), fused.value);
        }
    }
    Some(SynthesizedProduct {
        category: cluster.category,
        key_attribute: cluster.key_attribute.clone(),
        key_value: cluster.key_value.clone(),
        spec,
        offers: cluster.members.iter().map(|m| m.offer).collect(),
    })
}

/// The run-time pipeline: applies learned correspondences to incoming
/// offers and synthesizes new products.
pub struct RuntimePipeline {
    correspondences: pse_core::CorrespondenceSet,
    config: RuntimeConfig,
}

impl RuntimePipeline {
    /// Pipeline with default configuration.
    pub fn new(correspondences: pse_core::CorrespondenceSet) -> Self {
        Self::with_config(correspondences, RuntimeConfig::default())
    }

    /// Pipeline with custom configuration.
    pub fn with_config(
        correspondences: pse_core::CorrespondenceSet,
        config: RuntimeConfig,
    ) -> Self {
        Self { correspondences, config }
    }

    /// The correspondence set in use.
    pub fn correspondences(&self) -> &pse_core::CorrespondenceSet {
        &self.correspondences
    }

    /// Process a batch of offers into synthesized products.
    ///
    /// Offers without a category are skipped (classify them first with
    /// [`crate::category::TitleClassifier`]). `catalog` supplies the
    /// category schemas used to order fused specifications.
    pub fn process<P: SpecProvider>(
        &self,
        catalog: &Catalog,
        offers: &[Offer],
        provider: &P,
    ) -> SynthesisResult {
        let _obs = pse_obs::span("runtime.process");
        // Extraction + reconciliation is per-offer work; fan it out and
        // keep offer order, so clustering sees the same sequence at any
        // thread count.
        let reconciled = reconcile_batch(offers, &self.correspondences, provider);
        let offers_reconciled = reconciled.len();

        let cluster_span = pse_obs::span("runtime.cluster");
        let clusters = cluster_by_key(reconciled, &self.config.key_attributes);
        let offers_clustered = clusters.iter().map(|c| c.members.len()).sum();
        pse_obs::add(
            "runtime.drop.no_key",
            offers_reconciled.saturating_sub(offers_clustered) as u64,
        );
        pse_obs::add("runtime.clusters_formed", clusters.len() as u64);
        for cluster in &clusters {
            pse_obs::observe("runtime.cluster_size", cluster.members.len() as u64);
        }
        drop(cluster_span);

        // Clusters fuse independently; output order follows cluster order.
        let clusters_formed = clusters.len();
        let kept: Vec<Cluster> = clusters
            .into_iter()
            .filter(|c| c.members.len() >= self.config.min_cluster_size)
            .collect();
        pse_obs::add(
            "runtime.drop.small_cluster",
            clusters_formed.saturating_sub(kept.len()) as u64,
        );
        let fuse_span = pse_obs::span("runtime.fuse");
        let products: Vec<SynthesizedProduct> = pse_par::par_map_chunked(&kept, 4, |cluster| {
            fuse_cluster(catalog, cluster, &self.config)
        })
        .into_iter()
        .flatten()
        .collect();
        drop(fuse_span);
        pse_obs::add("runtime.products", products.len() as u64);
        pse_obs::add(
            "runtime.values_fused",
            products.iter().map(|p| p.spec.len() as u64).sum::<u64>(),
        );

        SynthesisResult { products, offers_in: offers.len(), offers_reconciled, offers_clustered }
    }

    /// The pipeline configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use pse_core::{
        AttributeCorrespondence, AttributeDef, AttributeKind, CategorySchema, CorrespondenceSet,
        MerchantId, Taxonomy,
    };

    fn setup() -> (Catalog, CorrespondenceSet, Vec<Offer>) {
        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::key("MPN", AttributeKind::Identifier),
                AttributeDef::new("Speed", AttributeKind::Numeric),
                AttributeDef::new("Capacity", AttributeKind::Numeric),
            ]),
        );
        let catalog = Catalog::new(tax);
        let set = CorrespondenceSet::from_correspondences([
            corr("MPN", "mpn", 0, cat),
            corr("Speed", "rpm", 0, cat),
            corr("Capacity", "capacity", 0, cat),
            corr("MPN", "mfr part", 1, cat),
            corr("Speed", "speed", 1, cat),
            corr("Capacity", "hard disk size", 1, cat),
        ]);
        let offers = vec![
            mk_offer(0, 0, cat, &[("MPN", "ABC123"), ("RPM", "7200 rpm"), ("Capacity", "500 GB")]),
            mk_offer(
                1,
                1,
                cat,
                &[("Mfr. Part #", "abc-123"), ("Speed", "7200"), ("Hard Disk Size", "500")],
            ),
            mk_offer(2, 1, cat, &[("Mfr. Part #", "XYZ999"), ("Speed", "5400")]),
            mk_offer(3, 0, cat, &[("John D.", "nice drive")]), // noise only
        ];
        (catalog, set, offers)
    }

    fn corr(ap: &str, ao: &str, m: u32, c: CategoryId) -> AttributeCorrespondence {
        AttributeCorrespondence {
            catalog_attribute: ap.into(),
            merchant_attribute: ao.into(),
            merchant: MerchantId(m),
            category: c,
            score: 0.9,
        }
    }

    fn mk_offer(id: u64, merchant: u32, cat: CategoryId, pairs: &[(&str, &str)]) -> Offer {
        Offer {
            id: OfferId(id),
            merchant: MerchantId(merchant),
            price_cents: 100,
            image_url: None,
            category: Some(cat),
            url: String::new(),
            title: String::new(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        }
    }

    #[test]
    fn end_to_end_synthesis() {
        let (catalog, set, offers) = setup();
        let pipeline = RuntimePipeline::new(set);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);

        assert_eq!(result.offers_in, 4);
        assert_eq!(result.offers_reconciled, 3, "noise-only offer dropped");
        assert_eq!(result.offers_clustered, 3);
        assert_eq!(result.products.len(), 2);

        let abc = result.products.iter().find(|p| p.key_value == "abc123").unwrap();
        assert_eq!(abc.offers.len(), 2, "merchants 0 and 1 fused");
        // "7200 rpm" vs "7200" is a centroid tie; the lexicographic
        // tie-break picks "7200" deterministically.
        assert_eq!(abc.spec.get("Speed"), Some("7200"));
        assert!(abc.spec.get("Capacity").is_some());
        assert!(abc.spec.get("MPN").is_some());

        let xyz = result.products.iter().find(|p| p.key_value == "xyz999").unwrap();
        assert_eq!(xyz.offers.len(), 1);
        assert_eq!(xyz.spec.get("Capacity"), None, "missing attribute not invented");
    }

    #[test]
    fn synthesized_specs_conform_to_schema() {
        let (catalog, set, offers) = setup();
        let pipeline = RuntimePipeline::new(set);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        for p in &result.products {
            let schema = catalog.taxonomy().schema(p.category);
            for pair in p.spec.iter() {
                assert!(schema.contains(&pair.name), "{} not in schema", pair.name);
            }
        }
    }

    #[test]
    fn min_cluster_size_filters_singletons() {
        let (catalog, set, offers) = setup();
        let pipeline = RuntimePipeline::with_config(
            set,
            RuntimeConfig { min_cluster_size: 2, ..RuntimeConfig::default() },
        );
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        assert_eq!(result.products.len(), 1);
        assert_eq!(result.products[0].offers.len(), 2);
    }

    #[test]
    fn keys_can_be_excluded_from_specs() {
        let (catalog, set, offers) = setup();
        let pipeline = RuntimePipeline::with_config(
            set,
            RuntimeConfig { include_keys_in_spec: false, ..RuntimeConfig::default() },
        );
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        for p in &result.products {
            assert_eq!(p.spec.get("MPN"), None);
        }
    }

    #[test]
    fn offers_without_category_are_skipped() {
        let (catalog, set, mut offers) = setup();
        for o in &mut offers {
            o.category = None;
        }
        let pipeline = RuntimePipeline::new(set);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        assert!(result.products.is_empty());
        assert_eq!(result.offers_reconciled, 0);
    }

    #[test]
    fn unknown_category_cluster_is_dropped_not_fatal() {
        // An offer classified against a category id the catalog has never
        // heard of must become a counted drop, not a panic.
        let (catalog, _, _) = setup();
        let bogus = CategoryId(999);
        let set = CorrespondenceSet::from_correspondences([corr("MPN", "mpn", 0, bogus)]);
        let offers = vec![mk_offer(0, 0, bogus, &[("MPN", "GHOST1")])];
        let pipeline = RuntimePipeline::new(set);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        assert!(result.products.is_empty());
        assert_eq!(result.offers_reconciled, 1);
        assert_eq!(result.offers_clustered, 1);
    }

    #[test]
    fn total_attributes_counts_pairs() {
        let (catalog, set, offers) = setup();
        let pipeline = RuntimePipeline::new(set);
        let provider = FnProvider(|o: &Offer| o.spec.clone());
        let result = pipeline.process(&catalog, &offers, &provider);
        let manual: usize = result.products.iter().map(|p| p.spec.len()).sum();
        assert_eq!(result.total_attributes(), manual);
        assert!(manual >= 5);
    }
}
