//! Title-based category classification (Section 2).
//!
//! "Merchant feeds may not have category information […] To determine the
//! category for a given offer, we use a simple classifier, which given the
//! title of the offer, returns its category C under the catalog taxonomy."
//! The paper omits the details; we use a multinomial Naive Bayes over title
//! tokens, trained from offers whose category is known (e.g. historical
//! offers), which matches the era's standard practice.

use std::collections::HashMap;

use pse_core::{CategoryId, Offer};
use pse_ml::MultinomialNaiveBayes;
use pse_text::tokenize::tokens;

/// Naive-Bayes offer-title → category classifier.
#[derive(Debug, Clone)]
pub struct TitleClassifier {
    model: MultinomialNaiveBayes,
    /// Dense class index ↔ category id mapping.
    classes: Vec<CategoryId>,
    class_of: HashMap<CategoryId, usize>,
}

impl TitleClassifier {
    /// Train from `(title, category)` pairs.
    pub fn train<'a, I>(examples: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, CategoryId)> + Clone,
    {
        let mut classes = Vec::new();
        let mut class_of = HashMap::new();
        for (_, c) in examples.clone() {
            class_of.entry(c).or_insert_with(|| {
                classes.push(c);
                classes.len() - 1
            });
        }
        let mut model = MultinomialNaiveBayes::new(classes.len());
        for (title, c) in examples {
            model.observe(class_of[&c], tokens(title));
        }
        Self { model, classes, class_of }
    }

    /// Train from offers that already carry a category.
    pub fn train_from_offers(offers: &[Offer]) -> Self {
        let examples: Vec<(&str, CategoryId)> =
            offers.iter().filter_map(|o| o.category.map(|c| (o.title.as_str(), c))).collect();
        Self::train(examples)
    }

    /// Number of known categories.
    pub fn num_categories(&self) -> usize {
        self.classes.len()
    }

    /// Classify a title; `None` when the classifier saw no training data.
    pub fn classify(&self, title: &str) -> Option<(CategoryId, f64)> {
        let toks = tokens(title);
        let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
        self.model.classify(&refs).map(|(c, p)| (self.classes[c], p))
    }

    /// Accuracy over labeled `(title, category)` pairs.
    pub fn accuracy<'a, I>(&self, examples: I) -> f64
    where
        I: IntoIterator<Item = (&'a str, CategoryId)>,
    {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (title, truth) in examples {
            total += 1;
            if self.classify(title).map(|(c, _)| c) == Some(truth) {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Whether `category` was seen at training time.
    pub fn knows(&self, category: CategoryId) -> bool {
        self.class_of.contains_key(&category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classifier() -> TitleClassifier {
        TitleClassifier::train([
            ("Seagate Barracuda 500GB SATA Hard Drive", CategoryId(0)),
            ("Hitachi Deskstar 7200rpm Hard Drive", CategoryId(0)),
            ("Western Digital 250GB IDE Drive", CategoryId(0)),
            ("Canon EOS 12MP Digital Camera", CategoryId(1)),
            ("Nikon Coolpix 10x Zoom Camera", CategoryId(1)),
            ("Sony Cybershot 14MP Camera Silver", CategoryId(1)),
        ])
    }

    #[test]
    fn classifies_by_domain_tokens() {
        let c = classifier();
        assert_eq!(c.classify("Samsung 1TB SATA Drive").unwrap().0, CategoryId(0));
        assert_eq!(c.classify("Olympus 16MP Camera").unwrap().0, CategoryId(1));
    }

    #[test]
    fn accuracy_on_training_data_is_high() {
        let c = classifier();
        let acc = c.accuracy([
            ("Seagate 500GB Hard Drive", CategoryId(0)),
            ("Canon Digital Camera 12MP", CategoryId(1)),
        ]);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn knows_trained_categories_only() {
        let c = classifier();
        assert!(c.knows(CategoryId(0)));
        assert!(!c.knows(CategoryId(7)));
        assert_eq!(c.num_categories(), 2);
    }

    #[test]
    fn empty_classifier_returns_none() {
        let c = TitleClassifier::train(Vec::<(&str, CategoryId)>::new());
        assert!(c.classify("anything").is_none());
        assert_eq!(c.accuracy([("x", CategoryId(0))]), 0.0);
    }

    #[test]
    fn train_from_offers_skips_uncategorized() {
        use pse_core::{MerchantId, OfferId, Spec};
        let offers = vec![
            Offer {
                id: OfferId(0),
                merchant: MerchantId(0),
                price_cents: 0,
                image_url: None,
                category: Some(CategoryId(3)),
                url: String::new(),
                title: "Blender 700 watts".into(),
                spec: Spec::new(),
            },
            Offer {
                id: OfferId(1),
                merchant: MerchantId(0),
                price_cents: 0,
                image_url: None,
                category: None,
                url: String::new(),
                title: "Mystery item".into(),
                spec: Spec::new(),
            },
        ];
        let c = TitleClassifier::train_from_offers(&offers);
        assert_eq!(c.num_categories(), 1);
    }
}
