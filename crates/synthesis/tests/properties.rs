//! Property-based tests for the pipeline's core invariants.

use proptest::prelude::*;
use pse_core::{AttributeCorrespondence, CategoryId, CorrespondenceSet, MerchantId, OfferId, Spec};
use pse_synthesis::runtime::{cluster_by_key, fuse_values, normalize_key, ReconciledOffer};

proptest! {
    #[test]
    fn fusion_returns_a_member_value(values in prop::collection::vec(".{0,24}", 1..8)) {
        let fused = fuse_values(&values).expect("non-empty input fuses");
        prop_assert!(values.contains(&fused.value), "{fused:?} not a member");
        prop_assert_eq!(fused.support, values.len());
        prop_assert!(fused.distance >= 0.0);
    }

    #[test]
    fn fusion_is_order_insensitive_on_value(mut values in prop::collection::vec("[a-z ]{1,12}", 1..6)) {
        let a = fuse_values(&values).unwrap();
        values.reverse();
        let b = fuse_values(&values).unwrap();
        prop_assert_eq!(a.value, b.value);
    }

    #[test]
    fn unanimous_fusion_is_exact(v in ".{1,16}", n in 1usize..6) {
        let values: Vec<&str> = std::iter::repeat_n(v.as_str(), n).collect();
        let fused = fuse_values(&values).unwrap();
        prop_assert_eq!(fused.value, v);
        prop_assert!(fused.distance < 1e-9);
    }

    #[test]
    fn normalize_key_strips_separators(s in "[A-Za-z0-9 _./-]{0,24}") {
        let k = normalize_key(&s);
        prop_assert!(k.chars().all(|c| c.is_alphanumeric()));
        prop_assert_eq!(normalize_key(&k), k.clone(), "idempotent");
        // Case and separators never matter.
        prop_assert_eq!(normalize_key(&s.to_uppercase()), k);
    }

    #[test]
    fn clustering_partitions_keyed_offers(
        keys in prop::collection::vec("[a-z0-9]{1,6}", 0..12),
    ) {
        let offers: Vec<ReconciledOffer> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| ReconciledOffer::new(
                OfferId(i as u64),
                MerchantId(0),
                CategoryId((i % 2) as u32),
                vec![("MPN".to_string(), k.clone())],
            ))
            .collect();
        let clusters = cluster_by_key(offers, &["MPN".to_string()]);
        // Every keyed offer lands in exactly one cluster.
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(total, keys.len());
        // Within a cluster, keys agree after normalization.
        for c in &clusters {
            for m in &c.members {
                prop_assert_eq!(normalize_key(m.value_of("MPN").unwrap()), c.key_value.clone());
                prop_assert_eq!(m.category, c.category);
            }
        }
    }

    #[test]
    fn correspondence_set_translation_is_consistent(
        entries in prop::collection::vec(
            ("[a-z]{1,6}", "[a-z]{1,6}", 0u32..3, 0u32..3, 0.0f64..1.0),
            0..16,
        )
    ) {
        let set = CorrespondenceSet::from_correspondences(entries.iter().map(
            |(ap, ao, m, c, s)| AttributeCorrespondence {
                catalog_attribute: ap.clone(),
                merchant_attribute: ao.clone(),
                merchant: MerchantId(*m),
                category: CategoryId(*c),
                score: *s,
            },
        ));
        // Translation returns the highest-scoring catalog attribute for each
        // (merchant, category, merchant attribute).
        for (_, ao, m, c, _) in &entries {
            let best = entries
                .iter()
                .filter(|(_, ao2, m2, c2, _)| ao2 == ao && m2 == m && c2 == c)
                .max_by(|a, b| a.4.total_cmp(&b.4))
                .map(|(ap, ..)| ap.clone())
                .unwrap();
            let got = set.translate(MerchantId(*m), CategoryId(*c), ao).unwrap();
            // Ties may resolve to either entry; scores must agree.
            let got_score = entries
                .iter()
                .filter(|(ap2, ao2, m2, c2, _)| ap2 == got && ao2 == ao && m2 == m && c2 == c)
                .map(|(.., s)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            let best_score = entries
                .iter()
                .filter(|(ap2, ao2, m2, c2, _)| ap2 == &best && ao2 == ao && m2 == m && c2 == c)
                .map(|(.., s)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((got_score - best_score).abs() < 1e-12);
        }
    }

    #[test]
    fn reconcile_outputs_only_mapped_attributes(
        pairs in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{1,6}"), 0..8),
    ) {
        let set = CorrespondenceSet::from_correspondences([AttributeCorrespondence {
            catalog_attribute: "Speed".into(),
            merchant_attribute: "rpm".into(),
            merchant: MerchantId(0),
            category: CategoryId(0),
            score: 1.0,
        }]);
        let spec = Spec::from_pairs(pairs.iter().map(|(a, b)| (a.clone(), b.clone())));
        let r = pse_synthesis::runtime::reconcile(
            OfferId(0),
            MerchantId(0),
            CategoryId(0),
            &spec,
            &set,
        );
        let expected = pairs.iter().filter(|(a, _)| a == "rpm").count();
        prop_assert_eq!(r.pairs().len(), expected);
        for (attr, _) in r.pairs() {
            // Stored names are normalized catalog attribute names.
            prop_assert_eq!(attr.as_str(), "speed");
        }
    }
}

/// Build a multi-token value from a 7-bit mask over a fixed vocabulary —
/// overlapping term sets and frequent exact duplicates, the regime where
/// centroid voting's tie-breaking actually fires.
fn masked_value(mask: u8) -> String {
    const TOKENS: [&str; 7] = ["microsoft", "windows", "vista", "home", "premium", "7200", "rpm"];
    let picked: Vec<&str> =
        TOKENS.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, t)| *t).collect();
    if picked.is_empty() {
        "empty".to_string()
    } else {
        picked.join(" ")
    }
}

proptest! {
    // The incremental accumulator is bit-identical to the batch fuser:
    // same value, same support, same f64 distance — for every strategy,
    // over value multisets dense in duplicates and shared terms. This is
    // the contract that lets `pse-store` re-fuse a cluster from cached
    // per-attribute state instead of re-tokenizing every member.
    #[test]
    fn incremental_fusion_matches_batch(masks in prop::collection::vec(0u8..128, 0..24)) {
        let values: Vec<String> = masks.iter().map(|&m| masked_value(m)).collect();
        for strategy in [
            pse_synthesis::FusionStrategy::CentroidVote,
            pse_synthesis::FusionStrategy::MajorityExact,
            pse_synthesis::FusionStrategy::LongestValue,
            pse_synthesis::FusionStrategy::FirstSeen,
        ] {
            let batch = pse_synthesis::runtime::fuse_values_with(&values, strategy);
            let mut accum = pse_synthesis::FusionAccumulator::default();
            for v in &values {
                accum.push(v);
            }
            prop_assert_eq!(accum.len(), values.len());
            let incremental = accum.finish(strategy);
            prop_assert_eq!(incremental, batch, "strategy {:?}", strategy);
        }
    }

    // Advancing a cluster's fusion cache in arbitrary chunk sizes and
    // fusing from the cache reproduces `fuse_cluster` over the full
    // member list exactly (spec, offer list, category, keys).
    #[test]
    fn chunked_cluster_fusion_matches_batch(
        member_masks in prop::collection::vec((0u8..128, 0u8..128), 1..16),
        chunk in 1usize..6,
    ) {
        use pse_core::{AttributeDef, AttributeKind, Catalog, CategorySchema, Taxonomy};
        use pse_synthesis::runtime::{
            advance_cluster_fusion, fuse_cluster, fuse_cluster_cached, Cluster,
            ClusterFusionCache, ReconciledOffer,
        };

        let mut tax = Taxonomy::new();
        let top = tax.add_top_level("Computing");
        let cat = tax.add_leaf(
            top,
            "Operating Systems",
            CategorySchema::from_attributes([
                AttributeDef::key("MPN", AttributeKind::Identifier),
                AttributeDef::new("Edition", AttributeKind::Text),
                AttributeDef::new("Media", AttributeKind::Text),
            ]),
        );
        let catalog = Catalog::new(tax);
        let config = pse_synthesis::RuntimeConfig::default();

        let members: Vec<ReconciledOffer> = member_masks
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                // Not every member carries every attribute.
                let mut pairs = vec![("mpn".to_string(), "X-1".to_string())];
                if a != 0 {
                    pairs.push(("edition".to_string(), masked_value(a)));
                }
                if b % 3 != 0 {
                    pairs.push(("media".to_string(), masked_value(b)));
                }
                ReconciledOffer::new(OfferId(i as u64), MerchantId(0), cat, pairs)
            })
            .collect();
        let cluster = Cluster {
            category: cat,
            key_attribute: "MPN".to_string(),
            key_value: "x1".to_string(),
            members,
        };

        let batch = fuse_cluster(&catalog, &cluster, &config);

        let mut cache = ClusterFusionCache::default();
        let mut upto = 0;
        while upto < cluster.members.len() {
            upto = (upto + chunk).min(cluster.members.len());
            prop_assert!(advance_cluster_fusion(
                &catalog,
                cat,
                &cluster.members[..upto],
                &config,
                &mut cache,
            ));
        }
        prop_assert_eq!(cache.consumed(), cluster.members.len());
        let incremental = fuse_cluster_cached(&cluster, &config, &cache);
        prop_assert_eq!(format!("{incremental:?}"), format!("{batch:?}"));
    }
}
