//! Property-based tests for the pipeline's core invariants.

use proptest::prelude::*;
use pse_core::{AttributeCorrespondence, CategoryId, CorrespondenceSet, MerchantId, OfferId, Spec};
use pse_synthesis::runtime::{cluster_by_key, fuse_values, normalize_key, ReconciledOffer};

proptest! {
    #[test]
    fn fusion_returns_a_member_value(values in prop::collection::vec(".{0,24}", 1..8)) {
        let fused = fuse_values(&values).expect("non-empty input fuses");
        prop_assert!(values.contains(&fused.value), "{fused:?} not a member");
        prop_assert_eq!(fused.support, values.len());
        prop_assert!(fused.distance >= 0.0);
    }

    #[test]
    fn fusion_is_order_insensitive_on_value(mut values in prop::collection::vec("[a-z ]{1,12}", 1..6)) {
        let a = fuse_values(&values).unwrap();
        values.reverse();
        let b = fuse_values(&values).unwrap();
        prop_assert_eq!(a.value, b.value);
    }

    #[test]
    fn unanimous_fusion_is_exact(v in ".{1,16}", n in 1usize..6) {
        let values: Vec<&str> = std::iter::repeat_n(v.as_str(), n).collect();
        let fused = fuse_values(&values).unwrap();
        prop_assert_eq!(fused.value, v);
        prop_assert!(fused.distance < 1e-9);
    }

    #[test]
    fn normalize_key_strips_separators(s in "[A-Za-z0-9 _./-]{0,24}") {
        let k = normalize_key(&s);
        prop_assert!(k.chars().all(|c| c.is_alphanumeric()));
        prop_assert_eq!(normalize_key(&k), k.clone(), "idempotent");
        // Case and separators never matter.
        prop_assert_eq!(normalize_key(&s.to_uppercase()), k);
    }

    #[test]
    fn clustering_partitions_keyed_offers(
        keys in prop::collection::vec("[a-z0-9]{1,6}", 0..12),
    ) {
        let offers: Vec<ReconciledOffer> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| ReconciledOffer::new(
                OfferId(i as u64),
                MerchantId(0),
                CategoryId((i % 2) as u32),
                vec![("MPN".to_string(), k.clone())],
            ))
            .collect();
        let clusters = cluster_by_key(offers, &["MPN".to_string()]);
        // Every keyed offer lands in exactly one cluster.
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(total, keys.len());
        // Within a cluster, keys agree after normalization.
        for c in &clusters {
            for m in &c.members {
                prop_assert_eq!(normalize_key(m.value_of("MPN").unwrap()), c.key_value.clone());
                prop_assert_eq!(m.category, c.category);
            }
        }
    }

    #[test]
    fn correspondence_set_translation_is_consistent(
        entries in prop::collection::vec(
            ("[a-z]{1,6}", "[a-z]{1,6}", 0u32..3, 0u32..3, 0.0f64..1.0),
            0..16,
        )
    ) {
        let set = CorrespondenceSet::from_correspondences(entries.iter().map(
            |(ap, ao, m, c, s)| AttributeCorrespondence {
                catalog_attribute: ap.clone(),
                merchant_attribute: ao.clone(),
                merchant: MerchantId(*m),
                category: CategoryId(*c),
                score: *s,
            },
        ));
        // Translation returns the highest-scoring catalog attribute for each
        // (merchant, category, merchant attribute).
        for (_, ao, m, c, _) in &entries {
            let best = entries
                .iter()
                .filter(|(_, ao2, m2, c2, _)| ao2 == ao && m2 == m && c2 == c)
                .max_by(|a, b| a.4.total_cmp(&b.4))
                .map(|(ap, ..)| ap.clone())
                .unwrap();
            let got = set.translate(MerchantId(*m), CategoryId(*c), ao).unwrap();
            // Ties may resolve to either entry; scores must agree.
            let got_score = entries
                .iter()
                .filter(|(ap2, ao2, m2, c2, _)| ap2 == got && ao2 == ao && m2 == m && c2 == c)
                .map(|(.., s)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            let best_score = entries
                .iter()
                .filter(|(ap2, ao2, m2, c2, _)| ap2 == &best && ao2 == ao && m2 == m && c2 == c)
                .map(|(.., s)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((got_score - best_score).abs() < 1e-12);
        }
    }

    #[test]
    fn reconcile_outputs_only_mapped_attributes(
        pairs in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{1,6}"), 0..8),
    ) {
        let set = CorrespondenceSet::from_correspondences([AttributeCorrespondence {
            catalog_attribute: "Speed".into(),
            merchant_attribute: "rpm".into(),
            merchant: MerchantId(0),
            category: CategoryId(0),
            score: 1.0,
        }]);
        let spec = Spec::from_pairs(pairs.iter().map(|(a, b)| (a.clone(), b.clone())));
        let r = pse_synthesis::runtime::reconcile(
            OfferId(0),
            MerchantId(0),
            CategoryId(0),
            &spec,
            &set,
        );
        let expected = pairs.iter().filter(|(a, _)| a == "rpm").count();
        prop_assert_eq!(r.pairs().len(), expected);
        for (attr, _) in r.pairs() {
            // Stored names are normalized catalog attribute names.
            prop_assert_eq!(attr.as_str(), "speed");
        }
    }
}
