//! Regression test for the `kullback_leibler` q(t)=0 contract: JS-based
//! feature extraction must never feed non-finite values to
//! `LogisticRegression::train`, even for merchant attributes whose value
//! vocabularies are completely disjoint from (or empty against) the
//! catalog side — the cases where a naive `KL(p ‖ q)` would be infinite.

use pse_core::{
    AttributeDef, AttributeKind, Catalog, CategorySchema, HistoricalMatches, MerchantId, Offer,
    OfferId, Spec, Taxonomy,
};
use pse_ml::{Dataset, LogisticRegression, TrainConfig};
use pse_synthesis::offline::bags::FeatureIndex;
use pse_synthesis::offline::features::{FeatureComputer, NUM_FEATURES};
use pse_synthesis::{FnProvider, OfflineLearner};

/// A worst-case scenario for divergence features: merchant 0 shares values
/// with the catalog, merchant 1's vocabulary is fully disjoint, and one
/// merchant attribute ("empty") never carries a value the extractor keeps.
fn scenario() -> (Catalog, Vec<Offer>, HistoricalMatches) {
    let mut tax = Taxonomy::new();
    let top = tax.add_top_level("Computing");
    let cat = tax.add_leaf(
        top,
        "Hard Drives",
        CategorySchema::from_attributes([
            AttributeDef::new("Speed", AttributeKind::Numeric),
            AttributeDef::new("Interface", AttributeKind::Text),
        ]),
    );
    let mut catalog = Catalog::new(tax);
    let mut offers = Vec::new();
    let mut hist = HistoricalMatches::new();
    let mut oid = 0u64;
    for (i, (speed, iface)) in
        [("5400", "ATA 100"), ("7200", "IDE 133"), ("10000", "SCSI 320")].iter().enumerate()
    {
        let pid = catalog.add_product(
            cat,
            format!("drive {i}"),
            Spec::from_pairs([("Speed", *speed), ("Interface", *iface)]),
        );
        // Merchant 0: identity names, shared vocabulary.
        offers.push(offer(oid, 0, cat, &[("Speed", speed), ("Interface", iface)]));
        hist.insert(OfferId(oid), pid);
        oid += 1;
        // Merchant 1: renamed attributes, *disjoint* value vocabulary — the
        // q(t)=0 case for every token.
        offers.push(offer(
            oid,
            1,
            cat,
            &[("velocity", "blazing quick"), ("plug", "weird connector")],
        ));
        hist.insert(OfferId(oid), pid);
        oid += 1;
    }
    (catalog, offers, hist)
}

fn offer(id: u64, merchant: u32, cat: pse_core::CategoryId, pairs: &[(&str, &str)]) -> Offer {
    Offer {
        id: OfferId(id),
        merchant: MerchantId(merchant),
        price_cents: 100,
        image_url: None,
        category: Some(cat),
        url: String::new(),
        title: String::new(),
        spec: Spec::from_pairs(pairs.iter().copied()),
    }
}

#[test]
fn all_candidate_features_are_finite_even_with_disjoint_vocabularies() {
    let (catalog, offers, hist) = scenario();
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let index = FeatureIndex::build_matched(&catalog, &offers, &hist, &provider);
    let mut computer = FeatureComputer::new(&catalog, &index);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (merchant, category) in index.merchant_category_groups() {
        let schema = catalog.taxonomy().schema(category);
        for ap in schema.iter() {
            for ao in index.merchant_attributes(merchant, category) {
                let f = computer.features(merchant, category, &ap.name, ao);
                for (i, v) in f.iter().enumerate() {
                    assert!(
                        v.is_finite(),
                        "non-finite feature {i} = {v} for ({:?}, {:?}, {}, {ao})",
                        merchant,
                        category,
                        ap.name,
                    );
                }
                assert_eq!(f.len(), NUM_FEATURES);
                rows.push(f.to_vec());
            }
        }
    }
    assert!(rows.len() >= 8, "scenario produced too few candidates: {}", rows.len());

    // Feed the extreme rows to the trainer directly: the model must come
    // out finite and usable.
    let mut train = Dataset::new();
    for (i, f) in rows.iter().enumerate() {
        train.push(f.clone(), i % 2 == 0);
    }
    let model = LogisticRegression::train(&train, &TrainConfig::default());
    assert!(model.weights().iter().all(|w| w.is_finite()), "non-finite weight");
    for f in &rows {
        let p = model.predict_proba(f);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "bad probability {p}");
    }
}

#[test]
fn offline_learner_stays_finite_end_to_end_on_adversarial_input() {
    let (catalog, offers, hist) = scenario();
    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let outcome = OfflineLearner::new().learn(&catalog, &offers, &hist, &provider);
    assert!(!outcome.scored.is_empty());
    for c in &outcome.scored {
        assert!(
            c.score.is_finite() && (0.0..=1.0).contains(&c.score),
            "candidate score {} out of range",
            c.score
        );
    }
}
